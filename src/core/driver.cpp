// The six-loop GSKNN driver (paper Algorithm 2.2).
//
// Loop nest (outermost first), identical to the Goto/BLIS partitioning:
//   6th  jc over n  (block nc)  — reference panel, packed Rc lives in L3
//   5th  pc over d  (block dc)  — depth block; rank-dc accumulation
//   4th  ic over m  (block mc)  — query panel, packed Qc in L2; OpenMP here
//   3rd  jr over nc (step nr)   — micro-panel of Rc promoted to L1
//   2nd  ir over mc (step mr)   — micro-panel of Qc
//   1st  (inside the micro-kernel) over dc
//
// Variant = the loop after which neighbor selection runs. Var#1 selects in
// the micro-kernel and, when d ≤ dc, never materializes distances at all;
// the other variants store finished distances into a query-major buffer and
// select at their loop boundary. Var#4 does not exist (distances are
// incomplete after the 4th loop — the paper eliminates it, and the Variant
// enum does not offer it).
//
// Resource governance (docs/ROBUSTNESS.md): every byte of workspace is
// planned up front (gsknn/core/workspace.hpp) and carved from per-call
// arenas, so allocation can only fail before the first result row is
// written; deadlines and cancellation are polled at block boundaries
// (5th-loop top and 4th-loop body entry), and an early stop flags the rows
// that missed candidates via NeighborTable::mark_row_incomplete.
//
// The whole driver is a template over the distance scalar: double is the
// paper-faithful path, float the single-precision extension. Only the
// micro-kernels and the blocking derivation differ per precision.
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <new>
#include <stdexcept>
#include <vector>

#include "gsknn/common/fault.hpp"
#include "gsknn/common/flightrec.hpp"
#include "gsknn/common/metrics.hpp"
#include "gsknn/common/pmu.hpp"
#include "gsknn/common/telemetry.hpp"
#include "gsknn/common/threads.hpp"
#include "gsknn/common/timer.hpp"
#include "gsknn/common/trace.hpp"
#include "gsknn/common/workspace.hpp"
#include "gsknn/core/entry_metrics.hpp"
#include "gsknn/core/knn.hpp"
#include "gsknn/core/packed_refs.hpp"
#include "gsknn/core/workspace.hpp"
#include "gsknn/model/perf_model.hpp"
#include "micro.hpp"
#include "pack.hpp"

namespace gsknn {

namespace core {
namespace {

/// Per-call workspace arenas (docs/ROBUSTNESS.md). The calling thread's
/// shared arena holds the packed Rc panel, reference norms and the distance
/// buffer; each OpenMP team thread's arena holds its private Qc panel, query
/// norms and deferred-selection candidate buffers. thread_local for the same
/// reason the old packing arenas were: the grow-only reservations stabilize
/// after the first call, and concurrent single-threaded kernel invocations
/// (knn_batch workers) get disjoint arenas for free.
WorkspaceArena& shared_arena() {
  thread_local WorkspaceArena arena;
  return arena;
}

WorkspaceArena& thread_arena() {
  thread_local WorkspaceArena arena;
  return arena;
}

/// Sentinel "heap row" for padded tile rows: root = -inf rejects everything.
template <typename T>
const T* neg_inf_row() {
  alignas(64) static const T row[kMaxMr] = {
      -std::numeric_limits<T>::infinity()};
  return row;
}

int kDummyIds[kMaxMr] = {-1, -1, -1, -1, -1, -1, -1, -1,
                         -1, -1, -1, -1, -1, -1, -1, -1};

/// Scan `len` contiguous finished distances and update one heap row.
/// Candidate j carries global id ids[j]. In GSKNN_PROFILE builds the
/// candidate/push/reject tallies accumulate into `tc` (exact: every one of
/// the `len` candidates lands in exactly one bucket).
template <typename T>
void row_select(const T* GSKNN_RESTRICT cand, const int* GSKNN_RESTRICT ids,
                int len, T* hd, int* hi, RowIdSet* hset, int k, int stride,
                HeapArity arity, bool dedup,
                telemetry::ThreadCounters* tc = nullptr) {
  [[maybe_unused]] std::uint64_t pushes = 0, rejects = 0;
  for (int j = 0; j < len; ++j) {
    const T dj = cand[j];
    // sel_accepts implements the selection contract: NaN distances and
    // lexicographic (distance, id) ties are rejected identically to the
    // fused micro-kernel paths, so every variant yields the same rows.
    if (!sel_accepts(dj, ids[j], hd, hi)) {
      if constexpr (telemetry::kCountersEnabled) ++rejects;
      continue;
    }
    if (dedup) {
      if (hset != nullptr) {
        if (!hset->insert_if_absent(ids[j])) {
          if constexpr (telemetry::kCountersEnabled) ++rejects;
          continue;
        }
      } else {
        bool present = false;
        for (int t = 0; t < stride; ++t) {
          if (hi[t] == ids[j]) {
            present = true;
            break;
          }
        }
        if (present) {
          if constexpr (telemetry::kCountersEnabled) ++rejects;
          continue;
        }
      }
    }
    sel_replace_root(hd, hi, k, arity, dj, ids[j]);
    if constexpr (telemetry::kCountersEnabled) ++pushes;
  }
  if constexpr (telemetry::kCountersEnabled) {
    if (tc != nullptr) {
      tc->add(telemetry::Counter::kCandidates,
              static_cast<std::uint64_t>(len));
      tc->add(telemetry::Counter::kHeapPushes, pushes);
      tc->add(telemetry::Counter::kRootRejects, rejects);
    }
  }
}

/// The loop number a Variant names (telemetry metadata).
int variant_number(Variant v) {
  switch (v) {
    case Variant::kVar1:
      return 1;
    case Variant::kVar2:
      return 2;
    case Variant::kVar3:
      return 3;
    case Variant::kVar5:
      return 5;
    case Variant::kVar6:
      return 6;
    case Variant::kAuto:
      break;
  }
  return 0;
}

/// The d == 0 degenerate path, shared by the cold and packed drivers:
/// every point is the empty tuple and every pairwise distance is identically
/// 0 (cosine: 1, the zero-norm rule). Selection still honors dedup and the
/// lowest-id tie contract, so route a constant candidate row through the
/// ordinary row scan.
template <typename T>
Status degenerate_d0(const int* rid, int n, int m, NeighborTableT<T>& result,
                     const KnnConfig& cfg, std::span<const int> result_rows) {
  const T dist0 = (cfg.norm == Norm::kCosine) ? T(1) : T(0);
  AlignedBuffer<T> cand(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) cand.data()[j] = dist0;
  const int stride0 = result.row_stride();
  const HeapArity arity0 = result.arity();
  for (int i = 0; i < m; ++i) {
    const int row =
        result_rows.empty() ? i : result_rows[static_cast<std::size_t>(i)];
    row_select(cand.data(), rid, n, result.row_dists(row),
               result.row_ids(row), result.row_idset(row), result.k(),
               stride0, arity0, cfg.dedup);
  }
  return Status::kOk;
}

// ---- plan phase ------------------------------------------------------------
//
// The driver's pipeline is plan / pack / compute. The plan phase resolves
// everything the loop nest needs before a single byte moves: variant,
// micro-kernel, blocking, thread balancing and the byte-exact workspace
// plan. The pack phase is behind the RefPanels providers below (plus the
// per-thread Qc packing inside the nest); the compute phase is
// knn_kernel_compute.

/// Resolved plan for one kernel invocation.
template <typename T>
struct KernelPlanT {
  Variant variant = Variant::kVar1;
  BlockingParams bp;       ///< balanced + retiled blocking
  MicroKernelT<T> mk;      ///< selected micro-kernel (fn, mr, nr)
  SimdLevel chosen = SimdLevel::kScalar;  ///< level the kernel dispatched to
  int threads = 1;
  bool needs_norms = false;
  bool defer_possible = false;
  WorkspacePlan ws;
};

/// Record the governance counters (and flight-recorder events) a finished
/// plan implies.
void count_plan_events(const WorkspacePlan& ws, Variant requested) {
  if (ws.retile_steps > 0) {
    metrics::add_counter(metrics::Counter::kWorkspaceRetiledCalls);
    metrics::add_counter(metrics::Counter::kWorkspaceRetileSteps,
                         static_cast<std::uint64_t>(ws.retile_steps));
    flightrec::record(flightrec::Kind::kRetile, -1, 0,
                      static_cast<std::uint64_t>(ws.retile_steps));
  }
  if (ws.variant != requested) {
    metrics::add_counter(metrics::Counter::kVariantDemotions);
    flightrec::record(flightrec::Kind::kDemotion, -1, 0,
                      static_cast<std::uint64_t>(ws.variant));
  }
}

/// Cold-path plan: resolve variant, micro-kernel and blocking, balance mc
/// over the thread team, and run the workspace planner (which may demote
/// Var#6 and retile nc/mc/dc under a cap — all bitwise-result-preserving,
/// gsknn/core/workspace.hpp). Throws StatusError(kBadConfig) for blockings
/// no micro-kernel matches.
template <typename T>
Status plan_kernel(int m, int n, int d, int k, const KnnConfig& cfg,
                   KernelPlanT<T>& kp) {
  const Variant req_variant = resolve_variant(m, n, d, k, cfg);
  const SimdLevel level = cpu_features().best_level();
  kp.needs_norms = (cfg.norm == Norm::kL2Sq || cfg.norm == Norm::kCosine);
  resolve_kernel_and_blocking<T>(level, cfg, kp.mk, kp.bp, kp.chosen);
  kp.threads = resolve_threads(cfg.threads);
  kp.bp.mc = balanced_mc(m, kp.bp.mc, kp.mk.mr, kp.threads);
  kp.defer_possible = k >= kDeferMinK && defer_enabled();
  const std::size_t cap = cfg.max_workspace_bytes != 0
                              ? cfg.max_workspace_bytes
                              : max_workspace_env();
  kp.ws = plan_workspace(m, n, d, req_variant, kp.bp, kp.mk.mr, kp.mk.nr,
                         kp.threads, kp.needs_norms, kp.defer_possible,
                         sizeof(T), cap);
  if (!kp.ws.fits) return Status::kResourceExhausted;
  count_plan_events(kp.ws, req_variant);
  kp.variant = kp.ws.variant;
  kp.bp = kp.ws.blocking;
  return Status::kOk;
}

/// Warm-path plan: the pack geometry (nc, dc, nr, SIMD level) is pinned by
/// the cache — the kernel must walk the cached blocks exactly as they were
/// packed — so the plan selects the micro-kernel AT the cache's level for
/// the query norm, adopts the cache's blocking, and runs the planner in
/// packed_refs mode (Rc leaves the footprint; the ladder may only demote
/// Var#6 and halve mc). A query the cache cannot serve byte-identically —
/// incompatible layout class, or a norm whose kernel has a different sliver
/// width (float ℓp resolves to the scalar 8×4 kernel; an AVX2 8×8 cache
/// cannot feed it) — fails with kUnsupported, and the caller can fall back
/// to the cold path.
template <typename T>
Status plan_kernel_packed(const PackedRefsT<T>& refs, int m, int n, int d,
                          int k, const KnnConfig& cfg, KernelPlanT<T>& kp) {
  if (!refs.layout_compatible(cfg.norm)) return Status::kUnsupported;
  kp.mk = select_micro_t<T>(refs.level(), cfg.norm);
  kp.chosen = refs.level();
  kp.bp = refs.blocking();
  if (kp.mk.fn == nullptr || kp.mk.nr != kp.bp.nr) return Status::kUnsupported;
  kp.bp.mr = kp.mk.mr;
  kp.bp.mc = static_cast<int>(round_up(static_cast<std::size_t>(kp.bp.mc),
                                       static_cast<std::size_t>(kp.mk.mr)));
  if (cfg.blocking.has_value()) {
    // An explicit blocking override must agree with the cache on everything
    // the cached panels pin; only the query-side mc is free.
    const BlockingParams& ob = *cfg.blocking;
    if (!ob.valid()) {
      throw StatusError(Status::kBadConfig,
                        "gsknn: invalid blocking parameters");
    }
    if (ob.nc != kp.bp.nc || ob.dc != kp.bp.dc || ob.nr != kp.bp.nr ||
        ob.mr != kp.mk.mr) {
      return Status::kUnsupported;
    }
    kp.bp.mc = ob.mc;
  }
  kp.needs_norms = (cfg.norm == Norm::kL2Sq || cfg.norm == Norm::kCosine);
  kp.threads = resolve_threads(cfg.threads);
  kp.bp.mc = balanced_mc(m, kp.bp.mc, kp.mk.mr, kp.threads);
  kp.defer_possible = k >= kDeferMinK && defer_enabled();
  const Variant req_variant = resolve_variant(m, n, d, k, cfg);
  const std::size_t cap = cfg.max_workspace_bytes != 0
                              ? cfg.max_workspace_bytes
                              : max_workspace_env();
  kp.ws = plan_workspace(m, n, d, req_variant, kp.bp, kp.mk.mr, kp.mk.nr,
                         kp.threads, kp.needs_norms, kp.defer_possible,
                         sizeof(T), cap, /*packed_refs=*/true);
  if (!kp.ws.fits) return Status::kResourceExhausted;
  count_plan_events(kp.ws, req_variant);
  kp.variant = kp.ws.variant;
  kp.bp = kp.ws.blocking;
  return Status::kOk;
}

// ---- pack phase (reference side) -------------------------------------------

/// Cold-path reference panels: pack each (jc, pc) slab into the shared
/// arena on demand — the pre-split driver's pack phase, verbatim. `rc`/`r2c`
/// are carved by the compute preamble.
template <typename T>
struct ArenaRefPanels {
  static constexpr bool kCached = false;
  const PointTableT<T>* X = nullptr;
  const int* ridx = nullptr;
  SimdLevel chosen = SimdLevel::kScalar;
  int tnr = 0;
  T* rc = nullptr;
  T* r2c = nullptr;
  const unsigned char* rbad = nullptr;  ///< ℓ∞ non-finite flags (may be null)
  bool any_bad = false;
  Status err = Status::kOk;  ///< never set on the cold path

  /// Pack slab (jc, pc); returns the panel base and reports the bytes moved.
  const T* get(int jc, int nb, int nbpad, int pc, int db, bool last,
               bool needs_norms, std::uint64_t& bytes) {
    pack_points_rt(tnr, chosen, *X, ridx, jc, nb, pc, db, rc);
    if (any_bad) poison_packed(rc, rbad, jc, nb, tnr, db);
    if (last && needs_norms) pack_norms_rt(tnr, *X, ridx, jc, nb, r2c);
    bytes = static_cast<std::uint64_t>(nbpad) * db * sizeof(T);
    if (last && needs_norms) {
      bytes += static_cast<std::uint64_t>(nbpad) * sizeof(T);
    }
    return rc;
  }
  const T* norms() const { return r2c; }
};

/// Warm-path reference panels: lease resident blocks from a PackedRefs
/// cache. One block is pinned at a time; a resident hit moves zero bytes
/// (the panels were packed by the same pack_points_rt/poison_packed calls
/// the cold provider makes, so the compute phase cannot tell the paths
/// apart). A failed acquire (allocation under a miss) surfaces through
/// `err` and stops the call like any other resource failure.
template <typename T>
struct CachedRefPanels {
  static constexpr bool kCached = true;
  PackedRefsT<T>* cache = nullptr;
  int nc = 0;
  std::uint64_t epoch = kEpochAny;  ///< generation every pin must match
  Status err = Status::kOk;
  int cur = -1;
  typename PackedRefsT<T>::Lease lease;

  const T* get(int jc, int nb, int nbpad, int pc, int db, bool last,
               bool needs_norms, std::uint64_t& bytes) {
    (void)nb;
    (void)db;
    (void)last;
    (void)needs_norms;
    const int b = jc / nc;
    bytes = 0;
    if (b != cur) {
      if (cur >= 0) cache->release(cur);
      cur = -1;
      const Status s = cache->acquire(b, lease, epoch);
      if (s != Status::kOk) {
        err = s;
        return nullptr;
      }
      cur = b;
      bytes = lease.bytes_packed;  // 0 on a warm hit
    }
    assert(lease.nbpad == nbpad);
    return lease.panel + static_cast<std::size_t>(lease.nbpad) * pc;
  }
  const T* norms() const { return lease.norms; }
  ~CachedRefPanels() {
    if (cur >= 0) cache->release(cur);
  }
};

// ---- compute phase ---------------------------------------------------------

/// The six-loop nest. Reference panels come from the RefPanels provider —
/// arena-packed (cold) or cache-leased (warm); everything else (query
/// packing, micro-kernels, selection, governance, telemetry) is one code
/// path, which is what makes cold and warm results bitwise-identical by
/// construction. `rid` is the reference id list the panels were packed from
/// (ridx.data() cold, refs.ids().data() warm).
template <typename T, typename RefPanels>
Status knn_kernel_compute(const PointTableT<T>& X, std::span<const int> qidx,
                          const int* rid, int n, NeighborTableT<T>& result,
                          const KnnConfig& cfg,
                          std::span<const int> result_rows,
                          const KernelPlanT<T>& kp, RefPanels& rpanels) {
  const int m = static_cast<int>(qidx.size());
  const int d = X.dim();
  const int k = result.k();

  // ℓ∞'s max-based accumulation cannot propagate NaN on its own (see
  // poison_packed in pack.hpp); pre-scan the query list once so the
  // per-block poison pass is skipped entirely on clean data. The reference
  // side is the provider's problem (cold: scanned by the caller; warm:
  // poisoned once at pack time inside the cache).
  std::vector<unsigned char> qbad;
  bool any_bad_q = false;
  if (cfg.norm == Norm::kLInf) {
    scan_nonfinite(X, qidx.data(), m, qbad, any_bad_q);
  }

  const Variant variant = kp.variant;
  const MicroFnT<T> micro = kp.mk.fn;
  const int tmr = kp.mk.mr;  // register-tile rows of the selected kernel
  const int tnr = kp.mk.nr;  // register-tile columns
  const SimdLevel chosen = kp.chosen;
  const int threads = kp.threads;
  const bool needs_norms = kp.needs_norms;
  const WorkspacePlan& plan = kp.ws;
  const bool defer_possible = kp.defer_possible;
  const int mc = kp.bp.mc;
  const int nc = kp.bp.nc;
  const int dc = kp.bp.dc;

  // Reserve every byte the call will touch before any result row can be
  // written: a genuine allocation failure (or an injected one;
  // gsknn/common/fault.hpp) surfaces here as kResourceExhausted with the
  // result untouched. nothing allocates inside the loop nest.
  std::atomic<int> stop{0};  // 0 = running; else the Status ending the call
  try {
    shared_arena().reserve(plan.shared_bytes);
  } catch (const std::bad_alloc&) {
    return Status::kResourceExhausted;
  }
#if defined(GSKNN_HAVE_OPENMP)
  if (threads > 1) {
    // libgomp serves subsequent same-size regions from the same thread
    // pool, so reserving the per-thread arenas in this preamble region
    // covers the 4th-loop teams below (the body re-checks as insurance —
    // pool reuse is an implementation behavior, not a guarantee).
#pragma omp parallel num_threads(threads)
    {
      try {
        thread_arena().reserve(plan.per_thread_bytes);
      } catch (const std::bad_alloc&) {
        stop.store(static_cast<int>(Status::kResourceExhausted),
                   std::memory_order_relaxed);
      }
    }
    if (stop.load(std::memory_order_relaxed) != 0) {
      return Status::kResourceExhausted;
    }
  } else
#endif
  {
    try {
      thread_arena().reserve(plan.per_thread_bytes);
    } catch (const std::bad_alloc&) {
      return Status::kResourceExhausted;
    }
  }

  // Telemetry: inactive (null sink) recorders cost one predictable branch
  // per cache block; counters additionally require a GSKNN_PROFILE build.
  telemetry::Recorder rec(cfg.profile, threads);
  const bool prof = rec.active();
  // Hardware-counter attribution piggybacks on the same snapshot points as
  // the phase timers; trace spans read timestamps only with a sink attached.
  const bool pmu_on = prof && telemetry::pmu_available();
  telemetry::TraceSink* const trace = cfg.trace;
  WallTimer wall_timer;

  const auto heap_row = [&](int i) {
    return result_rows.empty() ? i : result_rows[static_cast<std::size_t>(i)];
  };
  const int stride = result.row_stride();
  const HeapArity arity = result.arity();

  // Deadline/cancellation polling (block boundaries only; the hot loops are
  // never touched). One relaxed atomic load when fault injection is disarmed
  // and no token/deadline is set — `governed` keeps even that off the
  // common path.
  const bool governed =
      cfg.cancel != nullptr || cfg.deadline.has_value() || fault::active();
  const auto poll_stop = [&]() {
    Status s = Status::kOk;
    if (fault::active() && fault::inject_cancel()) {
      s = Status::kCancelled;
    } else if (cfg.cancel != nullptr && cfg.cancel->cancelled()) {
      s = Status::kCancelled;
    } else if (cfg.deadline.has_value() && deadline_expired(*cfg.deadline)) {
      s = Status::kDeadlineExceeded;
    }
    if (s != Status::kOk) {
      int expected = 0;
      if (stop.compare_exchange_strong(expected, static_cast<int>(s),
                                       std::memory_order_relaxed)) {
        // The thread that flips the stop flag logs the one event (the
        // other threads observe the same stop at their next poll).
        flightrec::record(s == Status::kCancelled
                              ? flightrec::Kind::kCancel
                              : flightrec::Kind::kDeadline,
                          -1, static_cast<int>(s), 0);
      }
    }
  };

  // Per-query completion tracking for early stops. Var#1/2/3 select inside
  // the 4th-loop body, so an mc-block's rows are complete iff the block's
  // last-depth body ran for every jc panel; block_pass counts those. Each
  // entry is written by the one thread owning that ic iteration and read
  // only after the region's barrier — no atomics needed. Var#5/6 select in
  // dedicated regions that are skipped wholesale on a stop, so completion
  // there is all-or-nothing.
  const int num_jc_blocks = static_cast<int>(ceil_div(n, nc));
  std::vector<int> block_pass(
      static_cast<std::size_t>(ceil_div(m, mc)), 0);

  // Shared-arena carving, byte-for-byte the plan's footprint. The distance
  // buffer: Var#1 needs it only to carry rank-dc accumulation when d > dc;
  // Var#2/3/5 hold the current nc-wide panel; Var#6 holds the full m × n
  // matrix.
  const int db_max = (d < dc) ? d : dc;
  const int nbpad_max = static_cast<int>(round_up(
      static_cast<std::size_t>(n < nc ? n : nc), static_cast<std::size_t>(tnr)));
  const bool needs_cbuf = (variant != Variant::kVar1) || (d > dc);
  const int width = (variant == Variant::kVar6) ? n : (n < nc ? n : nc);
  const int wpad = static_cast<int>(round_up(static_cast<std::size_t>(width),
                                             static_cast<std::size_t>(tnr)));
  const int mpad = static_cast<int>(round_up(static_cast<std::size_t>(m),
                                             static_cast<std::size_t>(tmr)));
  // Var#1's buffer is a pure rank-dc accumulator (only the micro-kernel ever
  // reads it back), so it uses column-major tiles with contiguous stores.
  // The selection variants scan query rows, so they pay the transposed
  // (query-major) layout. Either way the leading dimension gets one extra
  // cache line so power-of-two problem sizes don't alias all tile rows onto
  // a single cache set (pure conflict misses otherwise).
  const bool c_colmajor = (variant == Variant::kVar1);
  const int ld = (c_colmajor ? mpad : wpad) + static_cast<int>(64 / sizeof(T));
  WorkspaceArena& sws = shared_arena();
  if constexpr (!RefPanels::kCached) {
    // Cold path: the Rc panel (+ reference norms) is carved per call; the
    // warm path reads them out of the cache's resident blocks instead, and
    // the packed_refs workspace plan excluded them from shared_bytes.
    rpanels.rc = sws.alloc<T>(static_cast<std::size_t>(nbpad_max) * db_max);
    rpanels.r2c = needs_norms
                      ? sws.alloc<T>(static_cast<std::size_t>(nbpad_max))
                      : nullptr;
  }
  T* cbuf = nullptr;
  if (needs_cbuf) {
    // Var#6 materializes the full padded m × n panel: keep the size math in
    // 64 bits and assert the byte count fits before carving it (the int
    // block geometry alone cannot prove this).
    const std::uint64_t celems =
        static_cast<std::uint64_t>(ld) *
        static_cast<std::uint64_t>(c_colmajor ? wpad : mpad);
    assert(celems <= std::numeric_limits<std::size_t>::max() / sizeof(T));
    cbuf = sws.alloc<T>(static_cast<std::size_t>(celems));
  }

  for (int jc = 0; jc < n; jc += nc) {  // ---- 6th loop ----
    const int nb = (n - jc < nc) ? n - jc : nc;
    const int nbpad = static_cast<int>(round_up(static_cast<std::size_t>(nb),
                                                static_cast<std::size_t>(tnr)));
    const int colbase = (variant == Variant::kVar6) ? jc : 0;

    for (int pc = 0; pc < d; pc += dc) {  // ---- 5th loop ----
      if (stop.load(std::memory_order_relaxed) != 0) break;
      if (governed) {
        poll_stop();
        if (stop.load(std::memory_order_relaxed) != 0) break;
      }
      const int db = (d - pc < dc) ? d - pc : dc;
      const bool first = (pc == 0);
      const bool last = (pc + db >= d);
      // Deferred batched selection applies to the fused path when the sift
      // is deep enough to pay for the buffer bookkeeping: measured on the
      // table5 shapes, deferral is ~10% faster at k = 512 but loses below
      // k ≈ 256, where the sift is short and the stale prefilter roots admit
      // more candidates than the batching saves (see EXPERIMENTS.md
      // "Hot-path tuning"). The k == 1 non-dedup accept is already two
      // stores (sel_insert_raw), so deferral has nothing to amortize there.
      const bool defer_sel =
          (variant == Variant::kVar1) && last && defer_possible;

      // Pack phase, reference side: cold packs the slab into the arena and
      // reports its bytes; warm leases the cached block — 0 bytes on a
      // resident hit, which is exactly what kBytesPackedR then records.
      WallTimer pack_r_timer;
      telemetry::PmuCounts pr0;
      std::uint64_t tr0 = 0;
      if (prof) pack_r_timer.start();
      if (pmu_on) telemetry::PmuGroup::this_thread().read(pr0);
      if (trace != nullptr) tr0 = telemetry::trace_now();
      std::uint64_t pack_bytes = 0;
      const T* const rcp =
          rpanels.get(jc, nb, nbpad, pc, db, last, needs_norms, pack_bytes);
      if (rcp == nullptr) {
        // Acquire failure (allocation under a cache miss): stop like any
        // other resource failure, with the affected rows flagged below.
        int expected = 0;
        stop.compare_exchange_strong(expected,
                                     static_cast<int>(rpanels.err),
                                     std::memory_order_relaxed);
        break;
      }
      const T* const r2cur = (last && needs_norms) ? rpanels.norms() : nullptr;
      if (trace != nullptr) {
        trace->record(telemetry::Phase::kPackR, tr0, telemetry::trace_now(),
                      jc, pc);
      }
      if (prof) {
        // pack-Rc runs outside the parallel region, on the master thread.
        telemetry::ThreadCounters& s0 = rec.slot(0);
        s0.add_phase(telemetry::Phase::kPackR, pack_r_timer.seconds());
        if (pmu_on) {
          telemetry::PmuCounts pr1;
          if (telemetry::PmuGroup::this_thread().read(pr1)) {
            s0.add_pmu(telemetry::Phase::kPackR, pr1.delta_since(pr0));
          }
        }
        if constexpr (telemetry::kCountersEnabled) {
          s0.add(telemetry::Counter::kBytesPackedR, pack_bytes);
        }
      }

#if defined(GSKNN_HAVE_OPENMP)
#pragma omp parallel for schedule(static) num_threads(threads)
#endif
      for (int ic = 0; ic < m; ic += mc) {  // ---- 4th loop ----
        // Block-boundary cancellation point: a stop set while this body is
        // in flight lets it finish its whole block (per-row heap updates
        // are atomic w.r.t. their rows, so no torn rows either way).
        if (stop.load(std::memory_order_relaxed) != 0) continue;
        if (governed) {
          poll_stop();
          if (stop.load(std::memory_order_relaxed) != 0) continue;
        }
        // Exceptions must not escape the parallel region (that would
        // terminate the process). The only allocation reachable from here
        // is RowIdSet::grow under cfg.dedup — plus the insurance reserve
        // below — so the catch is a backstop, not a code path.
        try {
        const int mb = (m - ic < mc) ? m - ic : mc;
        const int mbpad = static_cast<int>(round_up(
            static_cast<std::size_t>(mb), static_cast<std::size_t>(tmr)));
        const int tid = thread_id();
        telemetry::ThreadCounters* tc = prof ? &rec.slot(tid) : nullptr;
        WallTimer block_timer;
        double select_secs = 0.0;
        [[maybe_unused]] std::uint64_t tiles_local = 0, cand_local = 0;
        // PMU snapshots bracket the same regions as the timers: bc0→bc1 is
        // pack-Qc, bc1→block-end minus the accumulated select deltas is the
        // micro-kernel (mirroring the select_secs subtraction below).
        telemetry::PmuCounts bc0, bc1, sel_pmu;
        std::uint64_t tq0 = 0;
        if (prof) block_timer.start();
        if (pmu_on) telemetry::PmuGroup::this_thread().read(bc0);
        if (trace != nullptr) tq0 = telemetry::trace_now();
        WorkspaceArena& ws = thread_arena();
        if (ws.capacity() < plan.per_thread_bytes) {
          ws.reserve(plan.per_thread_bytes);  // preamble insurance (above)
        }
        ws.rewind();
        T* const qc = ws.alloc<T>(static_cast<std::size_t>(mbpad) * db);
        pack_points_rt(tmr, chosen, X, qidx.data(), ic, mb, pc, db, qc);
        if (any_bad_q) {
          poison_packed(qc, qbad.data(), ic, mb, tmr, db);
        }
        const T* q2c = nullptr;
        if (last && needs_norms) {
          T* const q2 = ws.alloc<T>(static_cast<std::size_t>(mbpad));
          pack_norms_rt(tmr, X, qidx.data(), ic, mb, q2);
          q2c = q2;
        }
        T* cand_d = nullptr;
        int* cand_id = nullptr;
        int* cand_cnt = nullptr;
        if (defer_sel) {
          cand_d = ws.alloc<T>(static_cast<std::size_t>(mbpad) * kCandBufLen);
          cand_id =
              ws.alloc<int>(static_cast<std::size_t>(mbpad) * kCandBufLen);
          cand_cnt = ws.alloc<int>(static_cast<std::size_t>(mbpad));
          for (int i = 0; i < mbpad; ++i) cand_cnt[i] = 0;
        }
        std::uint64_t tm0 = 0;
        if (trace != nullptr) {
          tm0 = telemetry::trace_now();
          trace->record(telemetry::Phase::kPackQ, tq0, tm0, ic, pc);
        }
        if (prof) {
          tc->add_phase(telemetry::Phase::kPackQ, block_timer.seconds());
          if (pmu_on && telemetry::PmuGroup::this_thread().read(bc1)) {
            tc->add_pmu(telemetry::Phase::kPackQ, bc1.delta_since(bc0));
          }
          if constexpr (telemetry::kCountersEnabled) {
            std::uint64_t bytes =
                static_cast<std::uint64_t>(mbpad) * db * sizeof(T);
            if (last && needs_norms) bytes += static_cast<std::uint64_t>(mbpad) * sizeof(T);
            tc->add(telemetry::Counter::kBytesPackedQ, bytes);
          }
          block_timer.start();  // from here to the end of the 3rd loop: micro
        }

        for (int jr = 0; jr < nb; jr += tnr) {  // ---- 3rd loop ----
          const int cols = (nb - jr < tnr) ? nb - jr : tnr;
          const T* rs = rcp + static_cast<long>(jr) * db;
          const T* r2s = (last && needs_norms) ? r2cur + jr : nullptr;

          for (int ir = 0; ir < mb; ir += tmr) {  // ---- 2nd loop ----
            const int rows = (mb - ir < tmr) ? mb - ir : tmr;
            const T* qs = qc + static_cast<long>(ir) * db;
            const T* q2s = (last && needs_norms) ? q2c + ir : nullptr;

            T* ctile = nullptr;
            if (needs_cbuf) {
              ctile = c_colmajor
                          ? cbuf + (ic + ir) +
                                static_cast<long>(colbase + jr) * ld
                          : cbuf + static_cast<long>(ic + ir) * ld +
                                colbase + jr;
            }
            const T* cin = (!first && needs_cbuf) ? ctile : nullptr;
            T* cout = ctile;
            SelectCtxT<T> ctx;
            const SelectCtxT<T>* sel = nullptr;
            if (variant == Variant::kVar1 && last) {
              cout = nullptr;  // Var#1 discards the tile after selection
              for (int i = 0; i < tmr; ++i) {
                if (i < rows) {
                  const int row = heap_row(ic + ir + i);
                  ctx.hd[i] = result.row_dists(row);
                  ctx.hi[i] = result.row_ids(row);
                  ctx.hset[i] = result.row_idset(row);
                } else {
                  ctx.hd[i] = const_cast<T*>(neg_inf_row<T>());
                  ctx.hi[i] = kDummyIds;
                  ctx.hset[i] = nullptr;
                }
              }
              ctx.cand_ids = rid + jc + jr;
              ctx.k = k;
              ctx.row_stride = stride;
              ctx.arity = arity;
              ctx.dedup = cfg.dedup;
              ctx.tc = tc;
              if (defer_sel) {
                ctx.buf_d = cand_d + static_cast<long>(ir) * kCandBufLen;
                ctx.buf_id = cand_id + static_cast<long>(ir) * kCandBufLen;
                ctx.buf_cnt = cand_cnt + ir;
              }
              sel = &ctx;
              if constexpr (telemetry::kCountersEnabled) {
                // Pre-count every live tile candidate as a root-reject;
                // sel_insert reclassifies the accepted ones into pushes.
                cand_local += static_cast<std::uint64_t>(rows) * cols;
              }
            }

            micro(db, qs, rs, cin, ld, cout, ld, c_colmajor, q2s, r2s, last,
                  rows, cols, sel, cfg.p);
            if constexpr (telemetry::kCountersEnabled) ++tiles_local;
          }  // 2nd loop

          if (variant == Variant::kVar2 && last) {
            WallTimer sel_timer;
            telemetry::PmuCounts sc0;
            std::uint64_t ts0 = 0;
            if (prof) sel_timer.start();
            if (pmu_on) telemetry::PmuGroup::this_thread().read(sc0);
            if (trace != nullptr) ts0 = telemetry::trace_now();
            for (int i = 0; i < mb; ++i) {
              const int row = heap_row(ic + i);
              row_select(cbuf + static_cast<long>(ic + i) * ld + jr,
                         rid + jc + jr, cols, result.row_dists(row),
                         result.row_ids(row), result.row_idset(row), k,
                         stride, arity, cfg.dedup, tc);
            }
            if (trace != nullptr) {
              trace->record(telemetry::Phase::kSelect, ts0,
                            telemetry::trace_now(), ic, jc + jr);
            }
            if (pmu_on) {
              telemetry::PmuCounts sc1;
              if (telemetry::PmuGroup::this_thread().read(sc1)) {
                sel_pmu.accumulate(sc1.delta_since(sc0));
              }
            }
            if (prof) select_secs += sel_timer.seconds();
          }
        }  // 3rd loop

        if (defer_sel) {
          // Drain the deferred candidate buffers once per mc-block. Part of
          // the fused selection, so it stays inside the micro-phase timing.
          for (int i = 0; i < mb; ++i) {
            const int row = heap_row(ic + i);
            sel_flush_raw(result.row_dists(row), result.row_ids(row),
                          result.row_idset(row), k, stride, arity, cfg.dedup,
                          tc, cand_d + static_cast<long>(i) * kCandBufLen,
                          cand_id + static_cast<long>(i) * kCandBufLen,
                          cand_cnt + i);
          }
        }

        // The micro span covers the whole 3rd loop plus the deferred drain;
        // Var#2 select spans nest inside it on the timeline, matching how
        // select_secs is carved out of the micro-phase *time* below.
        if (trace != nullptr) {
          trace->record(telemetry::Phase::kMicro, tm0, telemetry::trace_now(),
                        ic, jc);
        }

        if (variant == Variant::kVar3 && last) {
          WallTimer sel_timer;
          telemetry::PmuCounts sc0;
          std::uint64_t ts0 = 0;
          if (prof) sel_timer.start();
          if (pmu_on) telemetry::PmuGroup::this_thread().read(sc0);
          if (trace != nullptr) ts0 = telemetry::trace_now();
          for (int i = 0; i < mb; ++i) {
            const int row = heap_row(ic + i);
            row_select(cbuf + static_cast<long>(ic + i) * ld,
                       rid + jc, nb, result.row_dists(row),
                       result.row_ids(row), result.row_idset(row), k, stride,
                       arity, cfg.dedup, tc);
          }
          if (trace != nullptr) {
            trace->record(telemetry::Phase::kSelect, ts0,
                          telemetry::trace_now(), ic, jc);
          }
          if (pmu_on) {
            telemetry::PmuCounts sc1;
            if (telemetry::PmuGroup::this_thread().read(sc1)) {
              sel_pmu.accumulate(sc1.delta_since(sc0));
            }
          }
          if (prof) select_secs += sel_timer.seconds();
        }
        if (prof) {
          // Everything in the 3rd loop that was not selection is micro-
          // kernel time (for Var#1 that includes the fused selection).
          tc->add_phase(telemetry::Phase::kMicro,
                        block_timer.seconds() - select_secs);
          tc->add_phase(telemetry::Phase::kSelect, select_secs);
          if (pmu_on) {
            telemetry::PmuCounts bc2;
            if (telemetry::PmuGroup::this_thread().read(bc2)) {
              tc->add_pmu(telemetry::Phase::kMicro,
                          bc2.delta_since(bc1).delta_since(sel_pmu));
              tc->add_pmu(telemetry::Phase::kSelect, sel_pmu);
            }
          }
          if constexpr (telemetry::kCountersEnabled) {
            tc->add(telemetry::Counter::kTiles, tiles_local);
            tc->add(telemetry::Counter::kCandidates, cand_local);
            tc->add(telemetry::Counter::kRootRejects, cand_local);
          }
        }
        if (last) ++block_pass[static_cast<std::size_t>(ic / mc)];
        } catch (const std::bad_alloc&) {
          int expected = 0;
          stop.compare_exchange_strong(
              expected, static_cast<int>(Status::kResourceExhausted),
              std::memory_order_relaxed);
        } catch (...) {
          int expected = 0;
          stop.compare_exchange_strong(expected,
                                       static_cast<int>(Status::kInternal),
                                       std::memory_order_relaxed);
        }
      }  // 4th loop
    }  // 5th loop

    if (variant == Variant::kVar5) {
      // Selection over the finished m × nc panel is all-or-nothing: poll
      // once before the region, never inside it, so a stop can't tear it.
      if (governed && stop.load(std::memory_order_relaxed) == 0) poll_stop();
      if (stop.load(std::memory_order_relaxed) == 0) {
#if defined(GSKNN_HAVE_OPENMP)
#pragma omp parallel num_threads(threads)
#endif
      {
        const int tid = thread_id();
        telemetry::ThreadCounters* tc = prof ? &rec.slot(tid) : nullptr;
        WallTimer sel_timer;
        telemetry::PmuCounts sc0;
        std::uint64_t ts0 = 0;
        if (prof) sel_timer.start();
        if (pmu_on) telemetry::PmuGroup::this_thread().read(sc0);
        if (trace != nullptr) ts0 = telemetry::trace_now();
#if defined(GSKNN_HAVE_OPENMP)
#pragma omp for schedule(static) nowait
#endif
        for (int i = 0; i < m; ++i) {
          const int row = heap_row(i);
          row_select(cbuf + static_cast<long>(i) * ld, rid + jc,
                     nb, result.row_dists(row), result.row_ids(row),
                     result.row_idset(row), k, stride, arity, cfg.dedup, tc);
        }
        if (trace != nullptr) {
          trace->record(telemetry::Phase::kSelect, ts0, telemetry::trace_now(),
                        -1, jc);
        }
        if (pmu_on) {
          telemetry::PmuCounts sc1;
          if (telemetry::PmuGroup::this_thread().read(sc1)) {
            tc->add_pmu(telemetry::Phase::kSelect, sc1.delta_since(sc0));
          }
        }
        if (prof) tc->add_phase(telemetry::Phase::kSelect, sel_timer.seconds());
      }
      }
    }
    if (stop.load(std::memory_order_relaxed) != 0) break;
  }  // 6th loop

  if (variant == Variant::kVar6 && stop.load(std::memory_order_relaxed) == 0) {
    if (governed) poll_stop();
    if (stop.load(std::memory_order_relaxed) == 0) {
#if defined(GSKNN_HAVE_OPENMP)
#pragma omp parallel num_threads(threads)
#endif
    {
      const int tid = thread_id();
      telemetry::ThreadCounters* tc = prof ? &rec.slot(tid) : nullptr;
      WallTimer sel_timer;
      telemetry::PmuCounts sc0;
      std::uint64_t ts0 = 0;
      if (prof) sel_timer.start();
      if (pmu_on) telemetry::PmuGroup::this_thread().read(sc0);
      if (trace != nullptr) ts0 = telemetry::trace_now();
#if defined(GSKNN_HAVE_OPENMP)
#pragma omp for schedule(static) nowait
#endif
      for (int i = 0; i < m; ++i) {
        const int row = heap_row(i);
        row_select(cbuf + static_cast<long>(i) * ld, rid, n,
                   result.row_dists(row), result.row_ids(row),
                   result.row_idset(row), k, stride, arity, cfg.dedup, tc);
      }
      if (trace != nullptr) {
        trace->record(telemetry::Phase::kSelect, ts0, telemetry::trace_now(),
                      -1, -1);
      }
      if (pmu_on) {
        telemetry::PmuCounts sc1;
        if (telemetry::PmuGroup::this_thread().read(sc1)) {
          tc->add_pmu(telemetry::Phase::kSelect, sc1.delta_since(sc0));
        }
      }
      if (prof) tc->add_phase(telemetry::Phase::kSelect, sel_timer.seconds());
    }
    }
  }

  const Status outcome =
      static_cast<Status>(stop.load(std::memory_order_acquire));
  if (outcome == Status::kOk) {
    // A finished run re-arms its rows: completion flags left over from an
    // earlier interrupted call on this table must not outlive a later call
    // that did offer every candidate to them.
    for (int i = 0; i < m; ++i) result.mark_row_complete(heap_row(i));
  } else {
    // Flag the rows that missed candidates. Var#1/2/3: per mc-block, rows
    // are complete iff every jc panel's last-depth body finished. Var#5/6:
    // a skipped selection region (or an unfinished accumulation) starves
    // every row uniformly.
    if (variant == Variant::kVar5 || variant == Variant::kVar6) {
      for (int i = 0; i < m; ++i) result.mark_row_incomplete(heap_row(i));
    } else {
      for (int ic = 0; ic < m; ic += mc) {
        if (block_pass[static_cast<std::size_t>(ic / mc)] >= num_jc_blocks) {
          continue;
        }
        const int mb = (m - ic < mc) ? m - ic : mc;
        for (int i = 0; i < mb; ++i) {
          result.mark_row_incomplete(heap_row(ic + i));
        }
      }
    }
  }

  if (prof) {
    telemetry::KernelProfile& P = *cfg.profile;
    P.algorithm = "gsknn";
    P.precision = sizeof(T) == 8 ? "f64" : "f32";
    P.m = m;
    P.n = n;
    P.d = d;
    P.k = k;
    P.threads = threads;
    P.variant = variant_number(variant);
    P.simd_level = static_cast<int>(chosen);
    P.blocking = kp.bp;
    P.workspace_bytes = plan.total_bytes();
    P.workspace_cap = plan.cap_bytes;
    P.workspace_retiles = plan.retile_steps;
    static const model::MachineParams mp{};
    const model::ProblemShape shape{m, n, d, k};
    P.model_gflops = model::predicted_gflops(
        variant == Variant::kVar1 ? model::Method::kVar1 : model::Method::kVar6,
        shape, mp, kp.bp);
    // Machine ceilings for the roofline reporter: the profile JSON carries
    // everything tools/roofline_report.py needs in one file.
    P.peak_gflops = mp.peak_flops / 1e9;
    P.peak_gbs = model::peak_stream_gbs(mp);
    // Evaluated in *this* translation unit so a profiled core build reports
    // its counters even to consumers compiled without GSKNN_PROFILE.
    P.counters_enabled = P.counters_enabled || telemetry::kCountersEnabled;
    P.pmu_enabled = P.pmu_enabled || pmu_on;
    rec.aggregate(wall_timer.seconds());
  }
  return outcome;
}

/// Cold path: plan, then compute with arena-packed reference panels.
template <typename T>
Status knn_kernel_impl(const PointTableT<T>& X, std::span<const int> qidx,
                       std::span<const int> ridx, NeighborTableT<T>& result,
                       const KnnConfig& cfg,
                       std::span<const int> result_rows) {
  const int m = static_cast<int>(qidx.size());
  const int n = static_cast<int>(ridx.size());
  const int d = X.dim();
  const int k = result.k();
  // Full contract validation (docs/CONTRACT.md): throws StatusError before
  // any parallel region or allocation so malformed calls fail cleanly.
  check_knn_args(X, qidx, ridx, result, cfg, result_rows);
  if (m == 0 || n == 0) return Status::kOk;
  if (d == 0) return degenerate_d0(ridx.data(), n, m, result, cfg, result_rows);

  KernelPlanT<T> kp;
  const Status planned = plan_kernel<T>(m, n, d, k, cfg, kp);
  if (planned != Status::kOk) return planned;

  std::vector<unsigned char> rbad;
  bool any_bad_r = false;
  if (cfg.norm == Norm::kLInf) {
    scan_nonfinite(X, ridx.data(), n, rbad, any_bad_r);
  }
  ArenaRefPanels<T> rpanels;
  rpanels.X = &X;
  rpanels.ridx = ridx.data();
  rpanels.chosen = kp.chosen;
  rpanels.tnr = kp.mk.nr;
  rpanels.rbad = rbad.data();
  rpanels.any_bad = any_bad_r;
  return knn_kernel_compute<T>(X, qidx, ridx.data(), n, result, cfg,
                               result_rows, kp, rpanels);
}

/// Warm path: plan against the cache's pinned geometry, then compute with
/// cache-leased reference panels. The epoch handshake happens here, before
/// anything can touch the result table.
template <typename T>
Status packed_kernel_impl(PackedRefsT<T>& refs, std::span<const int> qidx,
                          NeighborTableT<T>& result, const KnnConfig& cfg,
                          std::span<const int> result_rows,
                          std::uint64_t expected_epoch) {
  if (!refs.built()) {
    throw StatusError(Status::kInvalidArgument,
                      "gsknn: PackedRefs::build() has not succeeded");
  }
  const PointTableT<T>& X = *refs.table();
  // One atomic (id list, epoch) capture: the whole call validates, plans and
  // pins against this generation. A concurrent insert()/erase() cannot swap
  // the list mid-call (the snapshot holds shared ownership) and cannot slip
  // a repacked panel in (every block pin below re-checks `epoch`).
  const typename PackedRefsT<T>::Snapshot snap = refs.snapshot();
  const std::span<const int> ridx(*snap.ids);
  const int m = static_cast<int>(qidx.size());
  const int n = static_cast<int>(ridx.size());
  const int d = X.dim();
  const int k = result.k();
  check_knn_args(X, qidx, ridx, result, cfg, result_rows);
  if (expected_epoch != kEpochAny && expected_epoch != snap.epoch) {
    // No row saw any candidate of the caller's generation — flag them all,
    // exactly like a mid-flight pin rejection. Untouched rows of a fresh
    // table read vacuously complete, so skipping this would let a stale
    // reject masquerade as a finished (empty) result to anyone gating on
    // row_complete().
    for (int i = 0; i < m; ++i) {
      result.mark_row_incomplete(result_rows.empty()
                                     ? i
                                     : result_rows[static_cast<std::size_t>(i)]);
    }
    flightrec::record(flightrec::Kind::kStaleReject, -1,
                      static_cast<int>(Status::kStale), snap.epoch, m, n,
                      d, k);
    return Status::kStale;
  }
  if (m == 0 || n == 0) return Status::kOk;
  if (d == 0) return degenerate_d0(ridx.data(), n, m, result, cfg, result_rows);

  KernelPlanT<T> kp;
  const Status planned = plan_kernel_packed<T>(refs, m, n, d, k, cfg, kp);
  if (planned != Status::kOk) return planned;

  CachedRefPanels<T> rpanels;
  rpanels.cache = &refs;
  rpanels.nc = kp.bp.nc;
  rpanels.epoch = snap.epoch;  // kEpochAny resolves to the entry epoch
  return knn_kernel_compute<T>(X, qidx, ridx.data(), n, result, cfg,
                               result_rows, kp, rpanels);
}

/// Public-entry bracket: records (status, latency, shape) into the
/// aggregate registry for every call — including ones that end in a throw —
/// and, for clean runs, one model-drift sample comparing the measured wall
/// time against the §2.6 prediction for the shape the call resolved to
/// (Fig. 4 as a continuously monitored calibration error). Costs two clock
/// reads and ~a dozen relaxed per-thread increments per call; nothing when
/// metrics are disarmed.
template <typename T>
Status kernel_with_metrics(const PointTableT<T>& X, std::span<const int> qidx,
                           std::span<const int> ridx,
                           NeighborTableT<T>& result, const KnnConfig& cfg,
                           std::span<const int> result_rows) {
  const bool met = metrics::enabled();
  const bool rec = flightrec::enabled();
  if (!met && !rec) {
    return knn_kernel_impl<T>(X, qidx, ridx, result, cfg, result_rows);
  }
  const int m = static_cast<int>(qidx.size());
  const int n = static_cast<int>(ridx.size());
  const int d = X.dim();
  const int k = result.k();
  const metrics::EntryPoint ep = sizeof(T) == 8
                                     ? metrics::EntryPoint::kKernelF64
                                     : metrics::EntryPoint::kKernelF32;
  const std::uint64_t t0 = metrics::now_ns();
  if (rec) {
    flightrec::record(flightrec::Kind::kCallBegin, static_cast<int>(ep), 0,
                      0, m, n, d, k);
  }
  Status s = Status::kInternal;
  try {
    s = knn_kernel_impl<T>(X, qidx, ridx, result, cfg, result_rows);
  } catch (const StatusError& e) {
    record_entry_end(met, rec, ep, static_cast<int>(e.status()), t0, m, n, d,
                     k);
    throw;
  } catch (const std::bad_alloc&) {
    record_entry_end(met, rec, ep,
                     static_cast<int>(Status::kResourceExhausted), t0, m, n,
                     d, k);
    throw;
  }
  const std::uint64_t t1 = metrics::now_ns();
  const std::uint64_t ns = t1 - t0;
  if (met) {
    metrics::record_call_at(t1, ep, static_cast<int>(s), ns, m, n, d, k);
  }
  if (rec) {
    flightrec::record(flightrec::Kind::kCallEnd, static_cast<int>(ep),
                      static_cast<int>(s), ns, m, n, d, k);
  }
  if (met && s == Status::kOk && m > 0 && n > 0 && d > 0 && k > 0) {
    const Variant v = resolve_variant(m, n, d, k, cfg);
    static const model::MachineParams mp{};
    const BlockingParams bp = cfg.blocking.value_or(
        default_blocking(cpu_features().best_level()));
    const model::ProblemShape shape{m, n, d, k};
    const double predicted = model::predicted_time(
        v == Variant::kVar1 ? model::Method::kVar1 : model::Method::kVar6,
        shape, mp, bp);
    metrics::record_drift_at(t1, sizeof(T) == 4, predicted,
                             static_cast<double>(ns) * 1e-9);
  }
  return s;
}

/// Metrics bracket for the packed entry points: same (status, latency,
/// shape) sample under the kernel entry-point axis — warm and cold traffic
/// share one rate, which is what a server dashboard wants. No model-drift
/// sample: the §2.6 model prices the pack phase the warm path skips, so a
/// warm call would read as spurious model optimism.
template <typename T>
Status packed_kernel_with_metrics(PackedRefsT<T>& refs,
                                  std::span<const int> qidx,
                                  NeighborTableT<T>& result,
                                  const KnnConfig& cfg,
                                  std::span<const int> result_rows,
                                  std::uint64_t expected_epoch) {
  const bool met = metrics::enabled();
  const bool rec = flightrec::enabled();
  if (!met && !rec) {
    return packed_kernel_impl<T>(refs, qidx, result, cfg, result_rows,
                                 expected_epoch);
  }
  const int m = static_cast<int>(qidx.size());
  const int n = refs.size();
  const int d = refs.built() ? refs.table()->dim() : 0;
  const int k = result.k();
  const metrics::EntryPoint ep = sizeof(T) == 8
                                     ? metrics::EntryPoint::kKernelF64
                                     : metrics::EntryPoint::kKernelF32;
  const std::uint64_t t0 = metrics::now_ns();
  if (rec) {
    flightrec::record(flightrec::Kind::kCallBegin, static_cast<int>(ep), 0,
                      0, m, n, d, k);
  }
  Status s = Status::kInternal;
  try {
    s = packed_kernel_impl<T>(refs, qidx, result, cfg, result_rows,
                              expected_epoch);
  } catch (const StatusError& e) {
    record_entry_end(met, rec, ep, static_cast<int>(e.status()), t0, m, n, d,
                     k);
    throw;
  } catch (const std::bad_alloc&) {
    record_entry_end(met, rec, ep,
                     static_cast<int>(Status::kResourceExhausted), t0, m, n,
                     d, k);
    throw;
  }
  record_entry_end(met, rec, ep, static_cast<int>(s), t0, m, n, d, k);
  return s;
}

}  // namespace
}  // namespace core

Variant resolve_variant(int m, int n, int d, int k, const KnnConfig& cfg) {
  if (cfg.variant != Variant::kAuto) return cfg.variant;
  // The paper's §3 operating rule: Var#1 up to k = 512, Var#6 beyond. Our
  // Figure-5 reproduction measures the crossover at exactly that point, and
  // the §2.6 model — whose analytic threshold lands materially earlier (see
  // EXPERIMENTS.md) — keeps the last word only above the empirical floor,
  // where it can still prefer Var#1 (e.g. tiny n, where Var#6's extra
  // distance-matrix pass never amortizes).
  if (k <= 512) return Variant::kVar1;
  static const model::MachineParams mp{};
  const BlockingParams bp =
      cfg.blocking.value_or(default_blocking(cpu_features().best_level()));
  const model::ProblemShape s{m, n, d, k};
  return model::choose_variant(s, mp, bp) == model::Method::kVar1
             ? Variant::kVar1
             : Variant::kVar6;
}

void knn_kernel(const PointTable& X, std::span<const int> qidx,
                std::span<const int> ridx, NeighborTable& result,
                const KnnConfig& cfg, std::span<const int> result_rows) {
  const Status s =
      core::kernel_with_metrics<double>(X, qidx, ridx, result, cfg,
                                        result_rows);
  if (s != Status::kOk) {
    throw StatusError(s, std::string("gsknn: kernel stopped: ") +
                             status_name(s));
  }
}

void knn_kernel(const PointTableF& X, std::span<const int> qidx,
                std::span<const int> ridx, NeighborTableF& result,
                const KnnConfig& cfg, std::span<const int> result_rows) {
  const Status s =
      core::kernel_with_metrics<float>(X, qidx, ridx, result, cfg,
                                       result_rows);
  if (s != Status::kOk) {
    throw StatusError(s, std::string("gsknn: kernel stopped: ") +
                             status_name(s));
  }
}

Status knn_kernel_status(const PointTable& X, std::span<const int> qidx,
                         std::span<const int> ridx, NeighborTable& result,
                         const KnnConfig& cfg,
                         std::span<const int> result_rows) {
  try {
    return core::kernel_with_metrics<double>(X, qidx, ridx, result, cfg,
                                             result_rows);
  } catch (const StatusError& e) {
    return e.status();
  } catch (const std::bad_alloc&) {
    return Status::kResourceExhausted;
  }
}

Status knn_kernel_status(const PointTableF& X, std::span<const int> qidx,
                         std::span<const int> ridx, NeighborTableF& result,
                         const KnnConfig& cfg,
                         std::span<const int> result_rows) {
  try {
    return core::kernel_with_metrics<float>(X, qidx, ridx, result, cfg,
                                            result_rows);
  } catch (const StatusError& e) {
    return e.status();
  } catch (const std::bad_alloc&) {
    return Status::kResourceExhausted;
  }
}

void knn_kernel(PackedRefs& refs, std::span<const int> qidx,
                NeighborTable& result, const KnnConfig& cfg,
                std::span<const int> result_rows,
                std::uint64_t expected_epoch) {
  const Status s = core::packed_kernel_with_metrics<double>(
      refs, qidx, result, cfg, result_rows, expected_epoch);
  if (s != Status::kOk) {
    throw StatusError(s, std::string("gsknn: packed kernel stopped: ") +
                             status_name(s));
  }
}

void knn_kernel(PackedRefsF& refs, std::span<const int> qidx,
                NeighborTableF& result, const KnnConfig& cfg,
                std::span<const int> result_rows,
                std::uint64_t expected_epoch) {
  const Status s = core::packed_kernel_with_metrics<float>(
      refs, qidx, result, cfg, result_rows, expected_epoch);
  if (s != Status::kOk) {
    throw StatusError(s, std::string("gsknn: packed kernel stopped: ") +
                             status_name(s));
  }
}

Status knn_kernel_status(PackedRefs& refs, std::span<const int> qidx,
                         NeighborTable& result, const KnnConfig& cfg,
                         std::span<const int> result_rows,
                         std::uint64_t expected_epoch) {
  try {
    return core::packed_kernel_with_metrics<double>(refs, qidx, result, cfg,
                                                    result_rows,
                                                    expected_epoch);
  } catch (const StatusError& e) {
    return e.status();
  } catch (const std::bad_alloc&) {
    return Status::kResourceExhausted;
  }
}

Status knn_kernel_status(PackedRefsF& refs, std::span<const int> qidx,
                         NeighborTableF& result, const KnnConfig& cfg,
                         std::span<const int> result_rows,
                         std::uint64_t expected_epoch) {
  try {
    return core::packed_kernel_with_metrics<float>(refs, qidx, result, cfg,
                                                   result_rows,
                                                   expected_epoch);
  } catch (const StatusError& e) {
    return e.status();
  } catch (const std::bad_alloc&) {
    return Status::kResourceExhausted;
  }
}

}  // namespace gsknn
