// General-stride packing (internal; paper §2.3 "Packing").
//
// Unlike the BLAS packing in src/blas, these routines gather points straight
// from the global table X through an index list — the collection phase of
// Algorithm 2.1 and the GEMM packing phase are fused into one pass, which is
// where GSKNN's Tm^Q + Tm^R savings (eq. 5) come from.
//
// Layout ("Z-shape" sliver format): for each group of S consecutive points,
// `db` depth-steps of S contiguous values:
//   dst[(g·db + p)·S + i] = X(p0 + p, idx[i0 + g·S + i]).
// The final partial group is zero-padded so micro-kernels always execute a
// full tile.
#pragma once

#include <cstring>

#include "gsknn/common/macros.hpp"
#include "gsknn/data/point_table.hpp"

namespace gsknn::core {

/// Pack `count` points idx[i0 .. i0+count) over depth [p0, p0+db) into
/// S-slivers at dst (ceil(count/S)·db·S doubles).
template <int S, typename T>
void pack_points(const PointTableT<T>& X, const int* GSKNN_RESTRICT idx,
                 int i0, int count, int p0, int db, T* GSKNN_RESTRICT dst) {
  const int d = X.dim();
  const T* GSKNN_RESTRICT x = X.data();
  for (int g = 0; g < count; g += S) {
    const int pts = (count - g < S) ? count - g : S;
    T* GSKNN_RESTRICT blk = dst + static_cast<long>(g) * db;
    for (int i = 0; i < pts; ++i) {
      const T* GSKNN_RESTRICT src =
          x + static_cast<long>(idx[i0 + g + i]) * d + p0;
      for (int p = 0; p < db; ++p) blk[static_cast<long>(p) * S + i] = src[p];
    }
    for (int i = pts; i < S; ++i) {
      for (int p = 0; p < db; ++p) blk[static_cast<long>(p) * S + i] = T(0);
    }
  }
}

/// Pack the squared norms of `count` points into dst
/// (round_up(count, S) doubles), zero-padding the tail.
template <int S, typename T>
void pack_norms(const PointTableT<T>& X, const int* GSKNN_RESTRICT idx,
                int i0, int count, T* GSKNN_RESTRICT dst) {
  const T* GSKNN_RESTRICT x2 = X.norms2();
  int i = 0;
  for (; i < count; ++i) dst[i] = x2[idx[i0 + i]];
  const int padded = static_cast<int>(round_up(static_cast<std::size_t>(count),
                                               static_cast<std::size_t>(S)));
  for (; i < padded; ++i) dst[i] = T(0);
}

/// Runtime-sliver dispatchers (the driver's tile geometry comes from the
/// selected micro-kernel; only these sliver widths exist).
template <typename T>
inline void pack_points_rt(int S, const PointTableT<T>& X, const int* idx,
                           int i0, int count, int p0, int db, T* dst) {
  switch (S) {
    case 4:
      pack_points<4>(X, idx, i0, count, p0, db, dst);
      return;
    case 8:
      pack_points<8>(X, idx, i0, count, p0, db, dst);
      return;
    case 16:
      pack_points<16>(X, idx, i0, count, p0, db, dst);
      return;
    default:
      assert(false && "unsupported sliver width");
  }
}

template <typename T>
inline void pack_norms_rt(int S, const PointTableT<T>& X, const int* idx,
                          int i0, int count, T* dst) {
  switch (S) {
    case 4:
      pack_norms<4>(X, idx, i0, count, dst);
      return;
    case 8:
      pack_norms<8>(X, idx, i0, count, dst);
      return;
    case 16:
      pack_norms<16>(X, idx, i0, count, dst);
      return;
    default:
      assert(false && "unsupported sliver width");
  }
}

}  // namespace gsknn::core
