// General-stride packing (internal; paper §2.3 "Packing").
//
// Unlike the BLAS packing in src/blas, these routines gather points straight
// from the global table X through an index list — the collection phase of
// Algorithm 2.1 and the GEMM packing phase are fused into one pass, which is
// where GSKNN's Tm^Q + Tm^R savings (eq. 5) come from.
//
// Layout ("Z-shape" sliver format): for each group of S consecutive points,
// `db` depth-steps of S contiguous values:
//   dst[(g·db + p)·S + i] = X(p0 + p, idx[i0 + g·S + i]).
// The final partial group is zero-padded so micro-kernels always execute a
// full tile.
//
// Two implementations share that contract:
//   * the scalar template below — the reference, and the fallback for
//     partial tail groups and sliver widths without a vector kernel;
//   * SIMD transpose kernels (pack_avx2.cpp / pack_avx512.cpp) that load a
//     register block of source rows, transpose in registers, and store
//     full slivers — turning the strided element-at-a-time scatter into
//     contiguous vector stores, with a software prefetch of the next
//     group's gathered rows (see PrefetchParams).
// pack_points_rt dispatches on (sliver width, SimdLevel); the driver passes
// the level the micro-kernel actually resolved to, so a blocking fallback
// to a narrower kernel also selects the matching pack path.
#pragma once

#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "gsknn/common/arch.hpp"
#include "gsknn/common/macros.hpp"
#include "gsknn/data/point_table.hpp"

namespace gsknn::core {

/// Pack `count` points idx[i0 .. i0+count) over depth [p0, p0+db) into
/// S-slivers at dst (ceil(count/S)·db·S doubles).
template <int S, typename T>
void pack_points(const PointTableT<T>& X, const int* GSKNN_RESTRICT idx,
                 int i0, int count, int p0, int db, T* GSKNN_RESTRICT dst) {
  const int d = X.dim();
  const T* GSKNN_RESTRICT x = X.data();
  for (int g = 0; g < count; g += S) {
    const int pts = (count - g < S) ? count - g : S;
    T* GSKNN_RESTRICT blk = dst + static_cast<long>(g) * db;
    for (int i = 0; i < pts; ++i) {
      const T* GSKNN_RESTRICT src =
          x + static_cast<long>(idx[i0 + g + i]) * d + p0;
      for (int p = 0; p < db; ++p) blk[static_cast<long>(p) * S + i] = src[p];
    }
    for (int i = pts; i < S; ++i) {
      for (int p = 0; p < db; ++p) blk[static_cast<long>(p) * S + i] = T(0);
    }
  }
}

/// Pack the squared norms of `count` points into dst
/// (round_up(count, S) doubles), zero-padding the tail.
template <int S, typename T>
void pack_norms(const PointTableT<T>& X, const int* GSKNN_RESTRICT idx,
                int i0, int count, T* GSKNN_RESTRICT dst) {
  const T* GSKNN_RESTRICT x2 = X.norms2();
  int i = 0;
  for (; i < count; ++i) dst[i] = x2[idx[i0 + i]];
  const int padded = static_cast<int>(round_up(static_cast<std::size_t>(count),
                                               static_cast<std::size_t>(S)));
  for (; i < padded; ++i) dst[i] = T(0);
}

#if defined(GSKNN_BUILD_AVX2)
/// AVX2 transpose-pack kernels (full groups vectorized, tail group scalar).
void pack_points_avx2_s4(const PointTableT<double>& X, const int* idx, int i0,
                         int count, int p0, int db, double* dst);
void pack_points_avx2_s8(const PointTableT<double>& X, const int* idx, int i0,
                         int count, int p0, int db, double* dst);
void pack_points_avx2_s8f(const PointTableT<float>& X, const int* idx, int i0,
                          int count, int p0, int db, float* dst);
#endif

#if defined(GSKNN_BUILD_AVX512)
/// AVX-512 transpose-pack kernels for the 16-wide slivers.
void pack_points_avx512_s16(const PointTableT<double>& X, const int* idx,
                            int i0, int count, int p0, int db, double* dst);
void pack_points_avx512_s16f(const PointTableT<float>& X, const int* idx,
                             int i0, int count, int p0, int db, float* dst);
#endif

/// Runtime dispatch on (sliver width, SIMD level). `level` must be the
/// level of the micro-kernel the driver resolved (not the machine maximum),
/// so pack layout decisions and tile geometry always agree.
inline void pack_points_rt(int S, SimdLevel level, const PointTableT<double>& X,
                           const int* idx, int i0, int count, int p0, int db,
                           double* dst) {
  (void)level;
  switch (S) {
    case 4:
#if defined(GSKNN_BUILD_AVX2)
      if (level >= SimdLevel::kAvx2) {
        pack_points_avx2_s4(X, idx, i0, count, p0, db, dst);
        return;
      }
#endif
      pack_points<4>(X, idx, i0, count, p0, db, dst);
      return;
    case 8:
#if defined(GSKNN_BUILD_AVX2)
      if (level >= SimdLevel::kAvx2) {
        pack_points_avx2_s8(X, idx, i0, count, p0, db, dst);
        return;
      }
#endif
      pack_points<8>(X, idx, i0, count, p0, db, dst);
      return;
    case 16:
#if defined(GSKNN_BUILD_AVX512)
      if (level >= SimdLevel::kAvx512) {
        pack_points_avx512_s16(X, idx, i0, count, p0, db, dst);
        return;
      }
#endif
      pack_points<16>(X, idx, i0, count, p0, db, dst);
      return;
    default:
      assert(false && "unsupported sliver width");
  }
}

inline void pack_points_rt(int S, SimdLevel level, const PointTableT<float>& X,
                           const int* idx, int i0, int count, int p0, int db,
                           float* dst) {
  (void)level;
  switch (S) {
    case 4:
      pack_points<4>(X, idx, i0, count, p0, db, dst);
      return;
    case 8:
#if defined(GSKNN_BUILD_AVX2)
      if (level >= SimdLevel::kAvx2) {
        pack_points_avx2_s8f(X, idx, i0, count, p0, db, dst);
        return;
      }
#endif
      pack_points<8>(X, idx, i0, count, p0, db, dst);
      return;
    case 16:
#if defined(GSKNN_BUILD_AVX512)
      if (level >= SimdLevel::kAvx512) {
        pack_points_avx512_s16f(X, idx, i0, count, p0, db, dst);
        return;
      }
#endif
      pack_points<16>(X, idx, i0, count, p0, db, dst);
      return;
    default:
      assert(false && "unsupported sliver width");
  }
}

/// Flag every selected point that has at least one non-finite coordinate.
/// `bad[i]` corresponds to position i of the index list (not the global id,
/// which may repeat). O(count·d) worst case, but early-exits per point and is
/// only run for ℓ∞ (see poison_packed below). Shared by the driver's cold
/// path and the PackedRefs cache so their panels poison identically.
template <typename T>
void scan_nonfinite(const PointTableT<T>& X, const int* idx, int count,
                    std::vector<unsigned char>& bad, bool& any) {
  bad.assign(static_cast<std::size_t>(count), 0);
  any = false;
  const int d = X.dim();
  for (int i = 0; i < count; ++i) {
    const T* p = X.col(idx[i]);
    for (int r = 0; r < d; ++r) {
      if (!std::isfinite(p[r])) {
        bad[static_cast<std::size_t>(i)] = 1;
        any = true;
        break;
      }
    }
  }
}

/// Overwrite the packed columns of flagged points with quiet NaN.
///
/// Every additive norm (ℓ1, ℓ2, ℓp, cosine) propagates a NaN coordinate to
/// the final distance through the accumulation itself. ℓ∞ cannot: its
/// max-style combine (vmaxpd and the scalar mirror alike) returns the second
/// source when either operand is NaN, so a NaN term — or a NaN partial
/// carried across depth blocks — is silently dropped the moment a finite
/// term follows it. Poisoning the *entire* packed column of a non-finite
/// point in every depth block makes all of its |q−r| terms NaN, so the max
/// chain ends NaN in every SIMD path and every blocking, and the selection
/// contract then excludes the point. `count` may include the zero-padded
/// tail lanes (their flags are never set). Layout matches pack_points_rt:
/// tile-major groups of `tile` lanes, depth-major within a group.
template <typename T>
void poison_packed(T* panel, const unsigned char* bad, int i0, int count,
                   int tile, int db) {
  const T qnan = std::numeric_limits<T>::quiet_NaN();
  for (int g = 0; g < count; g += tile) {
    const int pts = (count - g < tile) ? count - g : tile;
    T* blk = panel + static_cast<long>(g) * db;
    for (int l = 0; l < pts; ++l) {
      if (!bad[static_cast<std::size_t>(i0 + g + l)]) continue;
      for (int p = 0; p < db; ++p) blk[static_cast<long>(p) * tile + l] = qnan;
    }
  }
}

template <typename T>
inline void pack_norms_rt(int S, const PointTableT<T>& X, const int* idx,
                          int i0, int count, T* dst) {
  switch (S) {
    case 4:
      pack_norms<4>(X, idx, i0, count, dst);
      return;
    case 8:
      pack_norms<8>(X, idx, i0, count, dst);
      return;
    case 16:
      pack_norms<16>(X, idx, i0, count, dst);
      return;
    default:
      assert(false && "unsupported sliver width");
  }
}

}  // namespace gsknn::core
