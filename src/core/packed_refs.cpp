// PackedRefs implementation (see include/gsknn/core/packed_refs.hpp).
//
// Invariant that carries the whole bitwise-identity claim: a resident block
// holds exactly the bytes the cold driver's per-(jc, pc) pack bracket would
// have produced for the same geometry, concatenated depth-major — each depth
// slab starts at panel + nbpad·pc because every preceding full slab holds
// nbpad·dc values. pack_block_locked therefore reuses the driver's own
// pack_points_rt / poison_packed / pack_norms_rt helpers verbatim; there is
// no second packing code path to drift.
#include "gsknn/core/packed_refs.hpp"

#include <algorithm>
#include <cassert>
#include <new>
#include <unordered_map>

#include "gsknn/common/flightrec.hpp"
#include "gsknn/common/macros.hpp"
#include "gsknn/common/metrics.hpp"
#include "micro.hpp"
#include "pack.hpp"

namespace gsknn {

namespace {

/// Scan one point for a non-finite coordinate (the per-id increment of
/// core::scan_nonfinite, used by insert()).
template <typename T>
unsigned char point_nonfinite(const PointTableT<T>& X, int id) {
  const T* p = X.col(id);
  const int d = X.dim();
  for (int r = 0; r < d; ++r) {
    if (!std::isfinite(p[r])) return 1;
  }
  return 0;
}

}  // namespace

template <typename T>
Status PackedRefsT<T>::build(const PointTableT<T>& X, std::span<const int> ridx,
                             const Options& opt) {
  // Resolve the pack geometry exactly as the cold driver would for this
  // norm: same micro-kernel dispatch, same blocking derivation, same
  // explicit-blocking validation (a mismatched override is kBadConfig).
  KnnConfig cfg;
  cfg.norm = opt.norm;
  cfg.blocking = opt.blocking;
  core::MicroKernelT<T> mk;
  BlockingParams bp;
  SimdLevel chosen = cpu_features().best_level();
  try {
    core::resolve_kernel_and_blocking<T>(cpu_features().best_level(), cfg, mk,
                                         bp, chosen);
  } catch (const StatusError& e) {
    return e.status();
  }

  const int table_n = X.size();
  for (const int id : ridx) {
    if (id < 0 || id >= table_n) return Status::kBadIndex;
  }

  // A budget that cannot hold even one block would make every acquire fail;
  // reject it up front, before any state is dropped.
  const int n = static_cast<int>(ridx.size());
  if (opt.budget_bytes != 0 && n > 0) {
    const int nb0 = n < bp.nc ? n : bp.nc;
    const std::size_t nbpad0 = round_up(static_cast<std::size_t>(nb0),
                                        static_cast<std::size_t>(mk.nr));
    std::size_t bytes0 = nbpad0 * static_cast<std::size_t>(X.dim()) * sizeof(T);
    if (opt.norm == Norm::kL2Sq || opt.norm == Norm::kCosine) {
      bytes0 += nbpad0 * sizeof(T);
    }
    if (bytes0 > opt.budget_bytes) return Status::kResourceExhausted;
  }

  std::lock_guard<std::mutex> lk(mu_);
  X_ = &X;
  ids_ = std::make_shared<const std::vector<int>>(ridx.begin(), ridx.end());
  bp_ = bp;
  tnr_ = mk.nr;
  level_ = chosen;
  norm_ = opt.norm;
  needs_norms_ = (opt.norm == Norm::kL2Sq || opt.norm == Norm::kCosine);
  poison_ = (opt.norm == Norm::kLInf);
  budget_ = opt.budget_bytes;
  epoch_ = 0;
  blocks_.clear();
  const int nblocks =
      n > 0 ? static_cast<int>(ceil_div(static_cast<std::size_t>(n),
                                        static_cast<std::size_t>(bp_.nc)))
            : 0;
  blocks_.resize(static_cast<std::size_t>(nblocks));
  bad_.clear();
  any_bad_ = false;
  tick_ = 0;
  resident_bytes_ = 0;
  st_ = Stats{};
  if (poison_) {
    core::scan_nonfinite(X, ids_->data(), n, bad_, any_bad_);
  }
  if (opt.eager) {
    for (int b = 0; b < nblocks; ++b) {
      const Status s = pack_block_locked(b);
      if (s != Status::kOk) return s;
      evict_over_budget_locked(b);
    }
  }
  return Status::kOk;
}

template <typename T>
Status PackedRefsT<T>::insert(std::span<const int> ids) {
  if (!built()) return Status::kInvalidArgument;
  const int table_n = X_->size();
  for (const int id : ids) {
    if (id < 0 || id >= table_n) return Status::kBadIndex;
  }
  std::lock_guard<std::mutex> lk(mu_);
  const int old_n = static_cast<int>(ids_->size());
  // Copy-on-write: concurrent queries hold snapshots of the old list, so
  // the mutation builds a fresh vector and swaps it in whole (never
  // reallocates a list a reader may be walking).
  auto next = std::make_shared<std::vector<int>>(*ids_);
  next->insert(next->end(), ids.begin(), ids.end());
  ids_ = std::move(next);
  if (poison_) {
    for (const int id : ids) {
      const unsigned char flag = point_nonfinite(*X_, id);
      bad_.push_back(flag);
      any_bad_ = any_bad_ || flag != 0;
    }
  }
  // Only the block spanning the old/new boundary changes contents; blocks
  // wholly past old_n are brand new (never resident), earlier blocks are
  // untouched and stay resident.
  if (old_n % bp_.nc != 0) {
    invalidate_block_locked((old_n - 1) / bp_.nc);
  }
  const int nblocks = static_cast<int>(
      ceil_div(ids_->size(), static_cast<std::size_t>(bp_.nc)));
  blocks_.resize(static_cast<std::size_t>(nblocks));
  ++epoch_;
  flightrec::record(flightrec::Kind::kPackUpdate, -1, 0, epoch_, 0,
                    static_cast<int>(ids_->size()));
  return Status::kOk;
}

template <typename T>
Status PackedRefsT<T>::erase(std::span<const int> ids) {
  if (!built()) return Status::kInvalidArgument;
  std::lock_guard<std::mutex> lk(mu_);
  // All-or-nothing validation (multiset containment — ids may legitimately
  // repeat both in the request and in the reference list), so a kBadIndex
  // never leaves a half-applied update behind.
  {
    std::unordered_map<int, int> need;
    for (const int id : ids) ++need[id];
    if (!need.empty()) {
      for (const int id : *ids_) {
        auto it = need.find(id);
        if (it != need.end() && it->second > 0) --it->second;
      }
      for (const auto& [id, remaining] : need) {
        (void)id;
        if (remaining > 0) return Status::kBadIndex;
      }
    }
  }
  // Copy-on-write, as in insert(): the swap-removes run on a private copy.
  auto next = std::make_shared<std::vector<int>>(*ids_);
  std::vector<int>& list = *next;
  for (const int id : ids) {
    const auto it = std::find(list.begin(), list.end(), id);
    assert(it != list.end());
    const int pos = static_cast<int>(it - list.begin());
    const int last = static_cast<int>(list.size()) - 1;
    list[static_cast<std::size_t>(pos)] = list[static_cast<std::size_t>(last)];
    list.pop_back();
    if (poison_) {
      bad_[static_cast<std::size_t>(pos)] = bad_[static_cast<std::size_t>(last)];
      bad_.pop_back();
    }
    invalidate_block_locked(pos / bp_.nc);
    invalidate_block_locked(last / bp_.nc);
  }
  const int nblocks =
      list.empty() ? 0
                   : static_cast<int>(ceil_div(
                         list.size(), static_cast<std::size_t>(bp_.nc)));
  ids_ = std::move(next);
  for (int b = nblocks; b < static_cast<int>(blocks_.size()); ++b) {
    invalidate_block_locked(b);
  }
  blocks_.resize(static_cast<std::size_t>(nblocks));
  ++epoch_;
  flightrec::record(flightrec::Kind::kPackUpdate, -1, 0, epoch_, 0,
                    static_cast<int>(ids_->size()));
  return Status::kOk;
}

template <typename T>
std::uint64_t PackedRefsT<T>::epoch() const {
  std::lock_guard<std::mutex> lk(mu_);
  return epoch_;
}

template <typename T>
typename PackedRefsT<T>::Snapshot PackedRefsT<T>::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return Snapshot{ids_, epoch_};
}

template <typename T>
int PackedRefsT<T>::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return ids_ ? static_cast<int>(ids_->size()) : 0;
}

template <typename T>
std::span<const int> PackedRefsT<T>::ids() const {
  std::lock_guard<std::mutex> lk(mu_);
  if (!ids_) return {};
  return std::span<const int>(*ids_);
}

template <typename T>
typename PackedRefsT<T>::Stats PackedRefsT<T>::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  Stats s = st_;
  s.resident_bytes = resident_bytes_;
  s.resident_blocks = 0;
  for (const Block& b : blocks_) {
    if (b.resident) ++s.resident_blocks;
  }
  return s;
}

template <typename T>
int PackedRefsT<T>::num_blocks() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int>(blocks_.size());
}

template <typename T>
bool PackedRefsT<T>::layout_compatible(Norm query_norm) const {
  if (!built()) return false;
  // ℓ∞ panels are NaN-poisoned and everything else must not be (a poisoned
  // column would corrupt additive norms; an unpoisoned one breaks ℓ∞'s NaN
  // contract) — its own class in both directions.
  if ((query_norm == Norm::kLInf) != poison_) return false;
  // Norm-needing queries require the packed norms; a norms-class cache also
  // serves ℓ1/ℓp (the norms are simply not read, panels are byte-identical).
  const bool query_needs_norms =
      (query_norm == Norm::kL2Sq || query_norm == Norm::kCosine);
  return !query_needs_norms || needs_norms_;
}

template <typename T>
Status PackedRefsT<T>::acquire(int block, Lease& lease,
                               std::uint64_t expected_epoch) {
  std::lock_guard<std::mutex> lk(mu_);
  // Per-block stale handshake, checked BEFORE bounds: re-validate the
  // caller's pinned generation under the same lock mutators bump it under,
  // so an update landing between a call's entry check and this pin is
  // caught here — the caller never receives a panel packed for a different
  // generation than the id snapshot it validated. Checking epoch first also
  // keeps the failure honest when the update shrank the block count: the
  // caller's block index was valid for ITS generation, so it must see
  // kStale, not kBadIndex.
  if (expected_epoch != kEpochAny && expected_epoch != epoch_) {
    return Status::kStale;
  }
  if (!built() || block < 0 || block >= static_cast<int>(blocks_.size())) {
    return Status::kBadIndex;
  }
  Block& blk = blocks_[static_cast<std::size_t>(block)];
  lease = Lease{};
  if (!blk.resident) {
    const Status s = pack_block_locked(block);
    if (s != Status::kOk) return s;
    lease.bytes_packed = blk.bytes;
    ++st_.misses;
    metrics::add_counter(metrics::Counter::kPackMisses);
  } else {
    ++st_.hits;
    metrics::add_counter(metrics::Counter::kPackHits);
  }
  blk.lru = ++tick_;
  ++blk.pins;
  int j0 = 0, nb = 0;
  block_range(block, j0, nb);
  lease.panel = blk.data->panel.data();
  lease.norms = needs_norms_ ? blk.data->norms.data() : nullptr;
  lease.nb = nb;
  lease.nbpad = static_cast<int>(round_up(static_cast<std::size_t>(nb),
                                          static_cast<std::size_t>(tnr_)));
  lease.hold = blk.data;  // defers any concurrent invalidation's free
  evict_over_budget_locked(block);
  return Status::kOk;
}

template <typename T>
void PackedRefsT<T>::release(int block) {
  std::lock_guard<std::mutex> lk(mu_);
  if (block < 0 || block >= static_cast<int>(blocks_.size())) return;
  Block& blk = blocks_[static_cast<std::size_t>(block)];
  if (blk.pins > 0) --blk.pins;
}

template <typename T>
void PackedRefsT<T>::block_range(int b, int& j0, int& nb) const {
  j0 = b * bp_.nc;
  const int n = static_cast<int>(ids_->size());
  nb = (n - j0 < bp_.nc) ? n - j0 : bp_.nc;
}

template <typename T>
std::size_t PackedRefsT<T>::block_bytes(int nb) const {
  const std::size_t nbpad = round_up(static_cast<std::size_t>(nb),
                                     static_cast<std::size_t>(tnr_));
  std::size_t bytes = nbpad * static_cast<std::size_t>(X_->dim()) * sizeof(T);
  if (needs_norms_) bytes += nbpad * sizeof(T);
  return bytes;
}

template <typename T>
Status PackedRefsT<T>::pack_block_locked(int b) {
  int j0 = 0, nb = 0;
  block_range(b, j0, nb);
  const int d = X_->dim();
  const std::size_t nbpad = round_up(static_cast<std::size_t>(nb),
                                     static_cast<std::size_t>(tnr_));
  Block& blk = blocks_[static_cast<std::size_t>(b)];
  try {
    // Fresh buffers every repack: an outstanding lease on the previous
    // generation (deferred invalidation) keeps the old BlockData alive, so
    // the new pack must not write into it.
    blk.data = std::make_shared<BlockData>();
    if (nbpad * static_cast<std::size_t>(d) > 0) {
      blk.data->panel.reset(nbpad * static_cast<std::size_t>(d));
    }
    if (needs_norms_ && nbpad > 0) blk.data->norms.reset(nbpad);
  } catch (const std::bad_alloc&) {
    blk.data.reset();
    return Status::kResourceExhausted;
  }
  const int dc = bp_.dc;
  for (int pc = 0; pc < d; pc += dc) {
    const int db = (d - pc < dc) ? d - pc : dc;
    T* const dst =
        blk.data->panel.data() + nbpad * static_cast<std::size_t>(pc);
    core::pack_points_rt(tnr_, level_, *X_, ids_->data(), j0, nb, pc, db, dst);
    if (poison_ && any_bad_) {
      core::poison_packed(dst, bad_.data(), j0, nb, tnr_, db);
    }
  }
  if (needs_norms_ && nbpad > 0) {
    core::pack_norms_rt(tnr_, *X_, ids_->data(), j0, nb,
                        blk.data->norms.data());
  }
  blk.bytes = block_bytes(nb);
  blk.resident = true;
  resident_bytes_ += blk.bytes;
  st_.bytes_packed += blk.bytes;
  metrics::add_counter(metrics::Counter::kCacheBytes,
                       static_cast<std::uint64_t>(blk.bytes));
  return Status::kOk;
}

template <typename T>
void PackedRefsT<T>::invalidate_block_locked(int b) {
  if (b < 0 || b >= static_cast<int>(blocks_.size())) return;
  Block& blk = blocks_[static_cast<std::size_t>(b)];
  if (!blk.resident) return;
  // Dropping the shared reference is the whole invalidation: if a query
  // still leases this block, its Lease::hold keeps the buffers alive until
  // release — the free is deferred, never unsafe. That query's next
  // epoch-checked acquire returns kStale, so it can never *combine* this
  // stale panel with post-update ones.
  resident_bytes_ -= blk.bytes;
  blk.data.reset();
  blk.bytes = 0;
  blk.resident = false;
}

template <typename T>
void PackedRefsT<T>::evict_over_budget_locked(int protect) {
  if (budget_ == 0) return;
  while (resident_bytes_ > budget_) {
    int victim = -1;
    std::uint64_t oldest = ~0ull;
    for (int b = 0; b < static_cast<int>(blocks_.size()); ++b) {
      const Block& blk = blocks_[static_cast<std::size_t>(b)];
      if (!blk.resident || blk.pins > 0 || b == protect) continue;
      if (blk.lru < oldest) {
        oldest = blk.lru;
        victim = b;
      }
    }
    if (victim < 0) break;  // everything left is pinned: over-budget but safe
    const std::size_t freed =
        blocks_[static_cast<std::size_t>(victim)].bytes;
    invalidate_block_locked(victim);
    ++st_.evictions;
    metrics::add_counter(metrics::Counter::kPackEvictions);
    flightrec::record(flightrec::Kind::kPackEvict, -1, 0,
                      static_cast<std::uint64_t>(freed), 0, victim);
  }
}

template class PackedRefsT<double>;
template class PackedRefsT<float>;

}  // namespace gsknn
