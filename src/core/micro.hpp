// Fused micro-kernel contract (internal; paper Algorithm 2.3).
//
// One call processes a single m_r × n_r tile through up to four steps:
//   1. rank-dc update     acc = (Cin ? Cin : 0) ⊕ combine(Qp, Rp)
//                          (⊕ is + for ℓ2/cosine/ℓ1/ℓp, max for ℓ∞)
//   2. distance finish    ℓ2/cosine, when `last`: map inner products to
//                          distances in registers
//   3. heap selection     when `sel` (Var#1): insert acc(i,j), i<rows,
//                          j<cols, into the per-row heaps
//   4. store              when Cout: write the tile — query-major
//                          Cout[i·ldout + j] (rows contiguous, what the
//                          selection variants scan) or column-major
//                          Cout[i + j·ldout] (pure accumulator buffers)
//
// Everything is templated on the distance scalar T: the paper-faithful
// double path and the single-precision extension share one driver. Tile
// geometry travels with the kernel (MicroKernelT), so each (ISA, scalar)
// pair picks its own shape:
//   scalar    8×4 (double and float)
//   AVX2+FMA  8×4 double, 8×8 float
//   AVX-512F  16×4 double, 16×8 float
#pragma once

#include "gsknn/common/arch.hpp"
#include "gsknn/core/knn.hpp"
#include "gsknn/select/heap.hpp"

namespace gsknn::core {

/// Register tile of the scalar and AVX2-double kernels (the paper's mr=8,
/// nr=4 on AVX).
inline constexpr int kMr = 8;
inline constexpr int kNr = 4;

/// Upper bounds across all kernels (sizes of per-tile scratch arrays).
inline constexpr int kMaxMr = 16;
inline constexpr int kMaxNr = 8;

/// Length of the per-query deferred candidate buffer (Var#1). Candidates
/// that pass the vectorized root prefilter are compress-stored here instead
/// of sifting into the heap inside the tile loop; the heap work happens in
/// batches at flush, off the FMA pipe's critical path. 16 entries keep one
/// row's buffer at two cache lines of distances plus one of ids.
inline constexpr int kCandBufLen = 16;

/// Smallest k for which the driver enables the deferred buffers. Below
/// this the binary sift is only a few levels deep and immediate insertion
/// wins; the measured crossover on the table5 shapes sits between k = 128
/// (deferral ~8% slower) and k = 512 (~10% faster).
inline constexpr int kDeferMinK = 256;

/// Selection context for the fused (Var#1) path: per-valid-row heap
/// pointers plus candidate metadata.
template <typename T>
struct SelectCtxT {
  T* hd[kMaxMr];           ///< row heap distance arrays ([0, rows) valid)
  int* hi[kMaxMr];         ///< row heap id arrays
  RowIdSet* hset[kMaxMr];  ///< per-row dedup index (may be null entries)
  const int* cand_ids;     ///< global ids of the tile's columns
  int k = 0;
  int row_stride = 0;  ///< physical slots per row (fallback dedup scan bound)
  HeapArity arity = HeapArity::kBinary;
  bool dedup = false;
  /// Telemetry slot of the owning thread (GSKNN_PROFILE builds only; the
  /// driver pre-counts every tile candidate as a root-reject and sel_insert
  /// reclassifies accepted ones, so pushes + rejects == candidates exactly).
  telemetry::ThreadCounters* tc = nullptr;
  /// Deferred candidate buffers for this tile's rows (kCandBufLen entries
  /// per row, counts alongside), or null for immediate insertion. The
  /// driver points these at the per-block arena offset of tile row 0, so
  /// buffers persist across the 3rd loop and flush at block end.
  T* buf_d = nullptr;
  int* buf_id = nullptr;
  int* buf_cnt = nullptr;
};

using SelectCtx = SelectCtxT<double>;

/// The selection accept predicate, shared by every path that offers a
/// candidate to a heap row (scalar micro-kernel accept loops, the AVX
/// prefilter re-checks, the driver's row_select and the deferred-buffer
/// flush). Fast reject first — `!(d <= root)` is one compare that throws
/// out both d > root and NaN, matching the vectorized `_CMP_LE_OQ`
/// prefilters exactly — then the full lexicographic-and-finite rule
/// (heap::pair_accepts) on the rare survivor. Keeping one definition is
/// what makes all variants and SIMD levels agree bitwise on ties, NaN and
/// ±inf (docs/CONTRACT.md).
template <typename T>
GSKNN_ALWAYS_INLINE bool sel_accepts(T d, int id, const T* GSKNN_RESTRICT hd,
                                     const int* GSKNN_RESTRICT hi) {
  if (GSKNN_LIKELY(!(d <= hd[0]))) return false;
  return heap::pair_accepts(d, id, hd[0], hi[0]);
}

/// Root replacement dispatch: quad heap for Var#6-style rows, the sorted
/// small-k fast path for k ≤ kSmallSortedK binary rows (a sorted row is a
/// valid binary heap, so the two binary strategies can interleave), binary
/// sift otherwise.
template <typename T>
GSKNN_ALWAYS_INLINE void sel_replace_root(T* GSKNN_RESTRICT hd,
                                          int* GSKNN_RESTRICT hi, int k,
                                          HeapArity arity, T d, int id) {
  if (arity == HeapArity::kQuad) {
    heap::quad_replace_root(hd, hi, k, d, id);
  } else if (k <= heap::kSmallSortedK) {
    heap::small_sorted_replace_root(hd, hi, k, d, id);
  } else {
    heap::binary_replace_root(hd, hi, k, d, id);
  }
}

/// Insert one accepted candidate into a raw heap row (caller already
/// verified sel_accepts). Shared by the in-tile path and the driver's
/// block-end flush of the deferred buffers.
template <typename T>
GSKNN_ALWAYS_INLINE void sel_insert_raw(T* GSKNN_RESTRICT hd,
                                        int* GSKNN_RESTRICT hi, RowIdSet* hset,
                                        int k, int stride, HeapArity arity,
                                        bool dedup,
                                        telemetry::ThreadCounters* tc, T d,
                                        int id) {
  if (k == 1 && !dedup) {
    // k == 1 specialization: the heap is a single slot, so the accept is
    // two stores — no dedup scan, no sift dispatch. (A register-argmin tile
    // epilogue was also tried and measured slower: the prefilter already
    // rejects whole tiles with two compares, so any unconditional per-tile
    // reduction only adds work; see EXPERIMENTS.md "Hot-path tuning".)
    hd[0] = d;
    hi[0] = id;
    if constexpr (telemetry::kCountersEnabled) {
      if (tc != nullptr) {
        tc->add(telemetry::Counter::kHeapPushes, 1);
        tc->sub(telemetry::Counter::kRootRejects, 1);
      }
    }
    return;
  }
  if (dedup) {
    if (hset != nullptr) {
      if (!hset->insert_if_absent(id)) return;
    } else {
      for (int t = 0; t < stride; ++t) {
        if (hi[t] == id) return;
      }
    }
  }
  sel_replace_root(hd, hi, k, arity, d, id);
  if constexpr (telemetry::kCountersEnabled) {
    if (tc != nullptr) {
      // The driver pre-counted this candidate as a root-reject; it survived.
      tc->add(telemetry::Counter::kHeapPushes, 1);
      tc->sub(telemetry::Counter::kRootRejects, 1);
    }
  }
}

/// Insert one accepted candidate (caller already verified sel_accepts).
template <typename T>
GSKNN_ALWAYS_INLINE void sel_insert(const SelectCtxT<T>& s, int row, T d,
                                    int id) {
  sel_insert_raw(s.hd[row], s.hi[row], s.hset[row], s.k, s.row_stride,
                 s.arity, s.dedup, s.tc, d, id);
}

/// Drain one row's deferred buffer through its heap. Candidates are
/// re-checked against the live root in arrival order, so the final neighbor
/// set is identical to immediate insertion (the prefilter only ever admits
/// a superset: roots shrink monotonically).
/// Kept out of line: it embeds the full heap sift, and inlining it into the
/// micro-kernels through sel_defer's flush-on-full branch bloats the tile
/// loop for a path that runs once per kCandBufLen accepted candidates.
template <typename T>
GSKNN_NOINLINE inline void sel_flush_raw(T* GSKNN_RESTRICT hd,
                                         int* GSKNN_RESTRICT hi, RowIdSet* hset,
                                         int k, int stride, HeapArity arity,
                                         bool dedup,
                                         telemetry::ThreadCounters* tc,
                                         T* GSKNN_RESTRICT bd,
                                         int* GSKNN_RESTRICT bid,
                                         int* GSKNN_RESTRICT cnt) {
  const int n = *cnt;
  for (int t = 0; t < n; ++t) {
    const T d = bd[t];
    if (sel_accepts(d, bid[t], hd, hi)) {
      sel_insert_raw(hd, hi, hset, k, stride, arity, dedup, tc, d, bid[t]);
    }
  }
  *cnt = 0;
}

template <typename T>
GSKNN_ALWAYS_INLINE void sel_flush_row(const SelectCtxT<T>& s, int row) {
  sel_flush_raw(s.hd[row], s.hi[row], s.hset[row], s.k, s.row_stride, s.arity,
                s.dedup, s.tc, s.buf_d + static_cast<long>(row) * kCandBufLen,
                s.buf_id + static_cast<long>(row) * kCandBufLen,
                s.buf_cnt + row);
}

/// Append one prefiltered candidate to its row buffer, flushing on fill.
template <typename T>
GSKNN_ALWAYS_INLINE void sel_defer(const SelectCtxT<T>& s, int row, T d,
                                   int id) {
  const int c = s.buf_cnt[row];
  s.buf_d[static_cast<long>(row) * kCandBufLen + c] = d;
  s.buf_id[static_cast<long>(row) * kCandBufLen + c] = id;
  s.buf_cnt[row] = c + 1;
  if (GSKNN_UNLIKELY(c + 1 == kCandBufLen)) sel_flush_row(s, row);
}

/// The unified micro-kernel signature. `dcur` is the current depth-block
/// length; `finish` is true on the final depth block; `lp` is the ℓp
/// exponent (ignored by the fixed norms); `c_colmajor` selects the Cin/Cout
/// tile layout.
template <typename T>
using MicroFnT = void (*)(int dcur, const T* Qp, const T* Rp, const T* Cin,
                          int ldin, T* Cout, int ldout, bool c_colmajor,
                          const T* q2, const T* r2, bool finish, int rows,
                          int cols, const SelectCtxT<T>* sel, double lp);

using MicroFn = MicroFnT<double>;

/// A micro-kernel plus the register-tile geometry it implements. Packing,
/// blocking validation and edge handling in the driver all derive from
/// mr/nr, so porting to a new ISA is: write the kernel, report its tile
/// (the paper's portability argument, §5).
template <typename T>
struct MicroKernelT {
  MicroFnT<T> fn = nullptr;
  int mr = kMr;
  int nr = kNr;
};

using MicroKernel = MicroKernelT<double>;

/// Portable micro-kernels, one per norm (8×4), both precisions.
MicroFn micro_scalar(Norm norm);
MicroFnT<float> micro_scalar_f32(Norm norm);

#if defined(GSKNN_BUILD_AVX2)
/// AVX2+FMA micro-kernels: 8×4 double, 8×8 float (ℓ2, ℓ1, ℓ∞, cosine; ℓp
/// falls back to scalar).
MicroFn micro_avx2(Norm norm);
MicroKernelT<float> micro_avx2_f32(Norm norm);
#endif

#if defined(GSKNN_BUILD_AVX512)
/// AVX-512F micro-kernels: 16×4 double, 16×8 float. fn == nullptr for norms
/// without a 512-bit implementation.
MicroKernel micro_avx512(Norm norm);
MicroKernelT<float> micro_avx512_f32(Norm norm);
#endif

/// Dispatch by SIMD level (ℓp always resolves to the scalar kernel).
MicroKernel select_micro(SimdLevel level, Norm norm);
MicroKernelT<float> select_micro_f32(SimdLevel level, Norm norm);

/// Precision-generic dispatch used by the templated driver.
template <typename T>
MicroKernelT<T> select_micro_t(SimdLevel level, Norm norm);

template <>
inline MicroKernelT<double> select_micro_t<double>(SimdLevel level,
                                                   Norm norm) {
  return select_micro(level, norm);
}

template <>
inline MicroKernelT<float> select_micro_t<float>(SimdLevel level, Norm norm) {
  return select_micro_f32(level, norm);
}

/// Resolve (micro-kernel, blocking) consistently: explicit blocking pins the
/// tile geometry and the dispatcher searches lower SIMD levels for a kernel
/// matching it; otherwise blocking is derived from the best kernel's tile.
/// `chosen` reports the SIMD level the kernel actually dispatched to. Defined
/// in workspace.cpp and shared by the driver and the workspace planner so the
/// two can never disagree about the footprint.
template <typename T>
void resolve_kernel_and_blocking(SimdLevel level, const KnnConfig& cfg,
                                 MicroKernelT<T>& mk, BlockingParams& bp,
                                 SimdLevel& chosen);

/// GSKNN_DEFER=0 disables the deferred candidate buffers (A/B knob; the
/// vectorized kernels then sift accepted candidates immediately, as the
/// scalar kernel always does). Shared by the driver and the planner: the
/// knob changes the per-thread footprint.
bool defer_enabled();

}  // namespace gsknn::core
