// Baselines the paper evaluates GSKNN against.
//
// knn_gemm_baseline is Algorithm 2.1: collect Q and R into dense matrices,
// compute the full distance matrix through a GEMM (here our own Goto-style
// blas::dgemm), add the squared norms, then select per query row. The phases
// are individually timed — they are exactly the Tcoll/Tgemm/Tsq2d/Theap
// columns of the paper's Table 5. Following §2.1, we compute Cᵀ = Rᵀ·Q so
// each query's distances are contiguous for the selection pass.
//
// knn_single_loop_baseline is the FLANN/ANN/MLPACK pattern: one scalar
// distance loop per (query, reference) pair, no blocking, no packing.
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "gsknn/blas/gemm.hpp"
#include "gsknn/common/aligned.hpp"
#include "gsknn/common/metrics.hpp"
#include "gsknn/common/pmu.hpp"
#include "gsknn/common/threads.hpp"
#include "gsknn/common/timer.hpp"
#include "gsknn/common/trace.hpp"
#include "gsknn/core/entry_metrics.hpp"
#include "gsknn/core/knn.hpp"
#include "gsknn/model/perf_model.hpp"
#include "gsknn/select/select.hpp"

namespace gsknn {

namespace {

void gemm_baseline_impl(const PointTable& X, std::span<const int> qidx,
                        std::span<const int> ridx, NeighborTable& result,
                        const KnnConfig& cfg,
                        std::span<const int> result_rows,
                        BaselineBreakdown* breakdown) {
  const int m = static_cast<int>(qidx.size());
  const int n = static_cast<int>(ridx.size());
  const int d = X.dim();
  const int k = result.k();
  check_knn_args(X, qidx, ridx, result, cfg, result_rows);
  if (cfg.norm != Norm::kL2Sq && cfg.norm != Norm::kCosine) {
    // The GEMM decomposition exists only for the Euclidean and cosine
    // distances — the baseline limitation §1 highlights.
    throw StatusError(Status::kUnsupported,
                      "gemm baseline supports the l2 and cosine norms only");
  }
  if (result.arity() != HeapArity::kBinary) {
    throw StatusError(Status::kUnsupported,
                      "gemm baseline requires a binary-arity table");
  }
  if (m == 0 || n == 0) return;
  const bool cosine = (cfg.norm == Norm::kCosine);
  const auto heap_row = [&](int i) {
    return result_rows.empty() ? i : result_rows[static_cast<std::size_t>(i)];
  };

  // All four Table-5 phases are timed into the unified telemetry profile;
  // the legacy BaselineBreakdown view is derived from it at the end. The
  // phases run (or are orchestrated) from this thread, so master-side wall
  // timing per phase is exact — no per-thread recorder needed.
  telemetry::KernelProfile prof;
  WallTimer wall_timer;
  WallTimer t;
  const auto record = [&prof](telemetry::Phase ph, double secs) {
    prof.phase_seconds[static_cast<int>(ph)] += secs;
    prof.phase_thread_seconds[static_cast<int>(ph)] += secs;
  };
  // PMU/trace instrumentation mirrors the fused driver: counter deltas are
  // attributed at the same boundaries as the timers. Workers in the parallel
  // phases read their own thread-pinned groups and merge under a critical
  // (once per phase per thread — not hot).
  const bool pmu_on = cfg.profile != nullptr && telemetry::pmu_available();
  telemetry::TraceSink* const trace = cfg.trace;
  const auto record_pmu = [&prof](telemetry::Phase ph,
                                  const telemetry::PmuCounts& delta) {
    for (int e = 0; e < telemetry::kPmuEventCount; ++e) {
      prof.phase_pmu[static_cast<int>(ph)][e] += delta.v[e];
    }
  };

  // Phase 1 — collect: gather Q (d×m), R (d×n) and the norms from X.
  t.start();
  telemetry::PmuCounts mc0;
  std::uint64_t mt0 = 0;
  if (pmu_on) telemetry::PmuGroup::this_thread().read(mc0);
  if (trace != nullptr) mt0 = telemetry::trace_now();
  AlignedBuffer<double> q(static_cast<std::size_t>(d) * m);
  AlignedBuffer<double> r(static_cast<std::size_t>(d) * n);
  AlignedBuffer<double> q2(static_cast<std::size_t>(m));
  AlignedBuffer<double> r2(static_cast<std::size_t>(n));
  for (int i = 0; i < m; ++i) {
    const double* src = X.col(qidx[static_cast<std::size_t>(i)]);
    double* dst = q.data() + static_cast<long>(i) * d;
    for (int p = 0; p < d; ++p) dst[p] = src[p];
    q2[static_cast<std::size_t>(i)] = X.norms2()[qidx[static_cast<std::size_t>(i)]];
  }
  for (int j = 0; j < n; ++j) {
    const double* src = X.col(ridx[static_cast<std::size_t>(j)]);
    double* dst = r.data() + static_cast<long>(j) * d;
    for (int p = 0; p < d; ++p) dst[p] = src[p];
    r2[static_cast<std::size_t>(j)] = X.norms2()[ridx[static_cast<std::size_t>(j)]];
  }
  record(telemetry::Phase::kCollect, t.seconds());
  if (trace != nullptr) {
    const std::uint64_t now = telemetry::trace_now();
    trace->record(telemetry::Phase::kCollect, mt0, now, m, n);
    mt0 = now;
  }
  if (pmu_on) {
    telemetry::PmuCounts mc1;
    if (telemetry::PmuGroup::this_thread().read(mc1)) {
      record_pmu(telemetry::Phase::kCollect, mc1.delta_since(mc0));
      mc0 = mc1;
    }
  }

  // Phase 2 — GEMM: Cᵀ(n×m) = α·RᵀQ (α = −2 for ℓ2, 1 for cosine), so
  // query i's distances are the contiguous column C[:, i].
  t.start();
  AlignedBuffer<double> c(static_cast<std::size_t>(n) * m);
  blas::dgemm(blas::Trans::kYes, blas::Trans::kNo, n, m, d,
              cosine ? 1.0 : -2.0, r.data(), d, q.data(), d, 0.0, c.data(), n);
  record(telemetry::Phase::kMicro, t.seconds());
  if (trace != nullptr) {
    trace->record(telemetry::Phase::kMicro, mt0, telemetry::trace_now(), m, n);
  }
  if (pmu_on) {
    telemetry::PmuCounts mc1;
    if (telemetry::PmuGroup::this_thread().read(mc1)) {
      record_pmu(telemetry::Phase::kMicro, mc1.delta_since(mc0));
    }
  }

  // Phase 3 — finish the distances: ℓ2 adds ‖q_i‖² + ‖r_j‖²; cosine
  // normalizes by the norms. The worksharing loop is written as parallel +
  // for-nowait so each worker can bracket its own chunk with PMU reads and a
  // trace span (the nowait makes per-thread span ends reflect real finish
  // times — 4th-phase load imbalance shows up on the timeline).
  t.start();
#if defined(GSKNN_HAVE_OPENMP)
#pragma omp parallel num_threads(resolve_threads(cfg.threads))
#endif
  {
    telemetry::PmuCounts w0;
    std::uint64_t wt0 = 0;
    if (pmu_on) telemetry::PmuGroup::this_thread().read(w0);
    if (trace != nullptr) wt0 = telemetry::trace_now();
#if defined(GSKNN_HAVE_OPENMP)
#pragma omp for schedule(static) nowait
#endif
    for (int i = 0; i < m; ++i) {
      double* ci = c.data() + static_cast<long>(i) * n;
      const double qi = q2[static_cast<std::size_t>(i)];
      if (cosine) {
        // Guard on denom <= 0 (not > 0) so a NaN denominator — non-finite
        // coordinates — reaches the NaN-producing division instead of being
        // laundered into the well-defined zero-norm answer of 1.
        for (int j = 0; j < n; ++j) {
          const double denom = std::sqrt(qi * r2[static_cast<std::size_t>(j)]);
          ci[j] = (denom <= 0.0) ? 1.0 : 1.0 - ci[j] / denom;
        }
      } else {
        // Clamp written so NaN survives: (0 > NaN) is false, so a NaN
        // expansion stays NaN and the selection contract rejects it.
        for (int j = 0; j < n; ++j) {
          const double v = ci[j] + qi + r2[static_cast<std::size_t>(j)];
          ci[j] = (0.0 > v) ? 0.0 : v;
        }
      }
    }
    if (trace != nullptr) {
      trace->record(telemetry::Phase::kSq2d, wt0, telemetry::trace_now(), m,
                    n);
    }
    if (pmu_on) {
      telemetry::PmuCounts w1;
      if (telemetry::PmuGroup::this_thread().read(w1)) {
        const telemetry::PmuCounts delta = w1.delta_since(w0);
#if defined(GSKNN_HAVE_OPENMP)
#pragma omp critical(gsknn_baseline_pmu)
#endif
        record_pmu(telemetry::Phase::kSq2d, delta);
      }
    }
  }
  record(telemetry::Phase::kSq2d, t.seconds());

  // Phase 4 — selection: STL max-heap per query row.
  t.start();
#if defined(GSKNN_HAVE_OPENMP)
#pragma omp parallel num_threads(resolve_threads(cfg.threads))
#endif
  {
    SelectScratch scratch;
    telemetry::PmuCounts w0;
    std::uint64_t wt0 = 0;
    if (pmu_on) telemetry::PmuGroup::this_thread().read(w0);
    if (trace != nullptr) wt0 = telemetry::trace_now();
#if defined(GSKNN_HAVE_OPENMP)
#pragma omp for schedule(static) nowait
#endif
    for (int i = 0; i < m; ++i) {
      const int row = heap_row(i);
      const double* ci = c.data() + static_cast<long>(i) * n;
      if (!cfg.dedup) {
        select_stl(ci, ridx.data(), n, result.row_dists(row),
                   result.row_ids(row), k, scratch);
      } else {
        // Dedup-aware path for solver integration (Table 1 "ref").
        // try_insert_unique applies the full accept predicate (lexicographic
        // tie-break + non-finite reject); a distance-only prefilter here
        // would drop equal-distance candidates with lower ids.
        for (int j = 0; j < n; ++j) {
          result.try_insert_unique(row, ci[j],
                                   ridx[static_cast<std::size_t>(j)]);
        }
      }
    }
    if (trace != nullptr) {
      trace->record(telemetry::Phase::kSelect, wt0, telemetry::trace_now(), m,
                    n);
    }
    if (pmu_on) {
      telemetry::PmuCounts w1;
      if (telemetry::PmuGroup::this_thread().read(w1)) {
        const telemetry::PmuCounts delta = w1.delta_since(w0);
#if defined(GSKNN_HAVE_OPENMP)
#pragma omp critical(gsknn_baseline_pmu)
#endif
        record_pmu(telemetry::Phase::kSelect, delta);
      }
    }
  }
  record(telemetry::Phase::kSelect, t.seconds());

  prof.algorithm = "gemm_baseline";
  prof.precision = "f64";
  prof.m = m;
  prof.n = n;
  prof.d = d;
  prof.k = k;
  prof.threads = resolve_threads(cfg.threads);
  prof.simd_level = static_cast<int>(cpu_features().best_level());
  prof.blocking = default_blocking(cpu_features().best_level());
  prof.wall_seconds = wall_timer.seconds();
  prof.invocations = 1;
  {
    static const model::MachineParams mp{};
    const model::ProblemShape shape{m, n, d, k};
    prof.model_gflops = model::predicted_gflops(model::Method::kGemmBaseline,
                                                shape, mp, prof.blocking);
    prof.peak_gflops = mp.peak_flops / 1e9;
    prof.peak_gbs = model::peak_stream_gbs(mp);
  }
  prof.pmu_enabled = pmu_on;

  if (cfg.profile != nullptr) cfg.profile->merge(prof);
  if (breakdown != nullptr) *breakdown = BaselineBreakdown::from_profile(prof);
}

}  // namespace

void knn_gemm_baseline(const PointTable& X, std::span<const int> qidx,
                       std::span<const int> ridx, NeighborTable& result,
                       const KnnConfig& cfg, std::span<const int> result_rows,
                       BaselineBreakdown* breakdown) {
  core::record_entry(metrics::EntryPoint::kGemmBaseline,
                     static_cast<int>(qidx.size()),
                     static_cast<int>(ridx.size()), X.dim(), result.k(), [&] {
                       gemm_baseline_impl(X, qidx, ridx, result, cfg,
                                          result_rows, breakdown);
                     });
}

namespace {

template <Norm N>
double scalar_distance(const double* a, const double* b, int d, double lp) {
  double acc = 0.0;
  if constexpr (N == Norm::kL2Sq) {
    (void)lp;
    for (int p = 0; p < d; ++p) {
      const double t = a[p] - b[p];
      acc += t * t;
    }
  } else if constexpr (N == Norm::kCosine) {
    (void)lp;
    double dot = 0.0, aa = 0.0, bb = 0.0;
    for (int p = 0; p < d; ++p) {
      dot += a[p] * b[p];
      aa += a[p] * a[p];
      bb += b[p] * b[p];
    }
    const double denom = std::sqrt(aa * bb);
    // denom <= 0 (not > 0) so a NaN denominator stays NaN; see the GEMM
    // baseline finish step.
    return (denom <= 0.0) ? 1.0 : 1.0 - dot / denom;
  } else if constexpr (N == Norm::kL1) {
    (void)lp;
    for (int p = 0; p < d; ++p) acc += std::abs(a[p] - b[p]);
  } else if constexpr (N == Norm::kLInf) {
    (void)lp;
    // max cannot propagate NaN (std::max and vmaxpd both drop it), so a
    // non-finite term poisons the distance explicitly — mirroring the fused
    // driver, which NaN-poisons the packed panels of non-finite points.
    for (int p = 0; p < d; ++p) {
      const double t = std::abs(a[p] - b[p]);
      if (!std::isfinite(t)) return std::numeric_limits<double>::quiet_NaN();
      acc = (acc > t) ? acc : t;
    }
  } else {
    for (int p = 0; p < d; ++p) acc += std::pow(std::abs(a[p] - b[p]), lp);
  }
  return acc;
}

template <Norm N>
void single_loop_impl(const PointTable& X, std::span<const int> qidx,
                      std::span<const int> ridx, NeighborTable& result,
                      const KnnConfig& cfg, std::span<const int> result_rows) {
  const int m = static_cast<int>(qidx.size());
  const int n = static_cast<int>(ridx.size());
  const int d = X.dim();
#if defined(GSKNN_HAVE_OPENMP)
#pragma omp parallel for schedule(static) num_threads(resolve_threads(cfg.threads))
#endif
  for (int i = 0; i < m; ++i) {
    const int row = result_rows.empty() ? i : result_rows[static_cast<std::size_t>(i)];
    const double* qp = X.col(qidx[static_cast<std::size_t>(i)]);
    for (int j = 0; j < n; ++j) {
      const int id = ridx[static_cast<std::size_t>(j)];
      const double dist = scalar_distance<N>(qp, X.col(id), d, cfg.p);
      if (cfg.dedup) {
        result.try_insert_unique(row, dist, id);
      } else {
        result.try_insert(row, dist, id);
      }
    }
  }
}

}  // namespace

void knn_single_loop_baseline(const PointTable& X, std::span<const int> qidx,
                              std::span<const int> ridx,
                              NeighborTable& result, const KnnConfig& cfg,
                              std::span<const int> result_rows) {
  core::record_entry(
      metrics::EntryPoint::kSingleLoop, static_cast<int>(qidx.size()),
      static_cast<int>(ridx.size()), X.dim(), result.k(), [&] {
        check_knn_args(X, qidx, ridx, result, cfg, result_rows);
        switch (cfg.norm) {
          case Norm::kL2Sq:
            single_loop_impl<Norm::kL2Sq>(X, qidx, ridx, result, cfg,
                                          result_rows);
            break;
          case Norm::kL1:
            single_loop_impl<Norm::kL1>(X, qidx, ridx, result, cfg,
                                        result_rows);
            break;
          case Norm::kLInf:
            single_loop_impl<Norm::kLInf>(X, qidx, ridx, result, cfg,
                                          result_rows);
            break;
          case Norm::kLp:
            single_loop_impl<Norm::kLp>(X, qidx, ridx, result, cfg,
                                        result_rows);
            break;
          case Norm::kCosine:
            single_loop_impl<Norm::kCosine>(X, qidx, ridx, result, cfg,
                                            result_rows);
            break;
        }
      });
}

}  // namespace gsknn
