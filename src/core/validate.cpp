// Argument validation shared by every kernel entry point (the contract
// layer; see docs/CONTRACT.md). The always-on checks are O(m + n) integer
// scans — negligible next to the O(m·n·d) kernel, cheap enough even for the
// tree solvers' many small leaf calls. The O((m+n)·d) finite-coordinate
// scan runs only with KnnConfig::validate set.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "gsknn/core/knn.hpp"
#include "micro.hpp"

namespace gsknn {

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kInvalidArgument:
      return "invalid_argument";
    case Status::kBadIndex:
      return "bad_index";
    case Status::kBadConfig:
      return "bad_config";
    case Status::kNonFinite:
      return "non_finite";
    case Status::kUnsupported:
      return "unsupported";
    case Status::kInternal:
      return "internal";
    case Status::kResourceExhausted:
      return "resource_exhausted";
    case Status::kDeadlineExceeded:
      return "deadline_exceeded";
    case Status::kCancelled:
      return "cancelled";
    case Status::kStale:
      return "stale";
  }
  return "unknown";
}

namespace {

Status fail(Status s, std::string* msg, const std::string& text) {
  if (msg != nullptr) *msg = text;
  return s;
}

/// Bounds-check an index list against the table size.
Status check_indices(std::span<const int> idx, int limit, const char* what,
                     std::string* msg) {
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const int v = idx[i];
    if (v < 0 || v >= limit) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "gsknn: %s[%zu] = %d out of range [0, %d)", what, i, v,
                    limit);
      return fail(Status::kBadIndex, msg, buf);
    }
  }
  return Status::kOk;
}

/// Finite-coordinate scan of the referenced points (opt-in; cfg.validate).
template <typename T>
Status check_finite(const PointTableT<T>& X, std::span<const int> idx,
                    const char* what, std::string* msg) {
  const int d = X.dim();
  const T* x = X.data();
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const T* p = x + static_cast<long>(idx[i]) * d;
    for (int j = 0; j < d; ++j) {
      if (!std::isfinite(p[j])) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "gsknn: %s point %d has a non-finite coordinate (dim %d)",
                      what, idx[i], j);
        return fail(Status::kNonFinite, msg, buf);
      }
    }
  }
  return Status::kOk;
}

}  // namespace

template <typename T>
Status validate_knn_args(const PointTableT<T>& X, std::span<const int> qidx,
                         std::span<const int> ridx,
                         const NeighborTableT<T>& result, const KnnConfig& cfg,
                         std::span<const int> result_rows, std::string* msg) {
  const int m = static_cast<int>(qidx.size());

  if (cfg.norm == Norm::kLp && !(std::isfinite(cfg.p) && cfg.p > 0.0)) {
    return fail(Status::kBadConfig, msg,
                "gsknn: lp norm requires a finite exponent p > 0");
  }
  if (cfg.threads < 0) {
    return fail(Status::kBadConfig, msg, "gsknn: threads must be >= 0");
  }
  if (cfg.blocking.has_value()) {
    if (!cfg.blocking->valid()) {
      return fail(Status::kBadConfig, msg,
                  "gsknn: invalid blocking parameters");
    }
    // Explicit blocking must match an available micro-kernel's register
    // tile. Checked here (not just in the driver) so the error surfaces at
    // validation time — before the batch/parallel_refs drivers enter their
    // OpenMP regions, where a throw would terminate the process.
    const SimdLevel best = cpu_features().best_level();
    bool matched = false;
    for (SimdLevel lv :
         {best, SimdLevel::kAvx2, SimdLevel::kScalar}) {
      if (lv > best) continue;
      const core::MicroKernelT<T> mk = core::select_micro_t<T>(lv, cfg.norm);
      if (mk.fn != nullptr && mk.mr == cfg.blocking->mr &&
          mk.nr == cfg.blocking->nr) {
        matched = true;
        break;
      }
    }
    if (!matched) {
      return fail(
          Status::kBadConfig, msg,
          "gsknn: blocking mr/nr do not match any available micro-kernel");
    }
  }

  if (!result_rows.empty()) {
    if (static_cast<int>(result_rows.size()) != m) {
      return fail(Status::kInvalidArgument, msg,
                  "gsknn: result_rows size must equal qidx size");
    }
    Status s = check_indices(result_rows, result.rows(), "result_rows", msg);
    if (s != Status::kOk) return s;
    // Duplicate result rows would race (several queries sifting one heap)
    // and silently merge neighbor lists; reject them up front. O(m log m)
    // on a copy — small next to the kernel, even per tree leaf.
    std::vector<int> sorted(result_rows.begin(), result_rows.end());
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      return fail(Status::kInvalidArgument, msg,
                  "gsknn: result_rows contains duplicate rows");
    }
  } else if (result.rows() < m) {
    return fail(Status::kInvalidArgument, msg,
                "gsknn: result table has fewer rows than queries");
  }

  Status s = check_indices(qidx, X.size(), "qidx", msg);
  if (s != Status::kOk) return s;
  s = check_indices(ridx, X.size(), "ridx", msg);
  if (s != Status::kOk) return s;

  if (cfg.validate) {
    s = check_finite(X, qidx, "query", msg);
    if (s != Status::kOk) return s;
    s = check_finite(X, ridx, "reference", msg);
    if (s != Status::kOk) return s;
  }
  return Status::kOk;
}

template <typename T>
void check_knn_args(const PointTableT<T>& X, std::span<const int> qidx,
                    std::span<const int> ridx, const NeighborTableT<T>& result,
                    const KnnConfig& cfg, std::span<const int> result_rows) {
  std::string msg;
  const Status s = validate_knn_args(X, qidx, ridx, result, cfg, result_rows,
                                     &msg);
  if (s != Status::kOk) throw StatusError(s, msg);
}

template Status validate_knn_args<double>(const PointTable&,
                                          std::span<const int>,
                                          std::span<const int>,
                                          const NeighborTable&,
                                          const KnnConfig&,
                                          std::span<const int>, std::string*);
template Status validate_knn_args<float>(const PointTableF&,
                                         std::span<const int>,
                                         std::span<const int>,
                                         const NeighborTableF&,
                                         const KnnConfig&,
                                         std::span<const int>, std::string*);
template void check_knn_args<double>(const PointTable&, std::span<const int>,
                                     std::span<const int>,
                                     const NeighborTable&, const KnnConfig&,
                                     std::span<const int>);
template void check_knn_args<float>(const PointTableF&, std::span<const int>,
                                    std::span<const int>,
                                    const NeighborTableF&, const KnnConfig&,
                                    std::span<const int>);

}  // namespace gsknn
