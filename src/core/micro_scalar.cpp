// Portable fused micro-kernels — the reference implementation of the
// Algorithm 2.3 contract for every norm, and the ℓp production path.
#include <algorithm>
#include <cmath>

#include "micro.hpp"

namespace gsknn::core {

namespace {

/// Per-element combine for the rank-dc update, one specialization per norm.
template <Norm N, typename T>
GSKNN_ALWAYS_INLINE T combine(T acc, T q, T r, double lp) {
  if constexpr (N == Norm::kL2Sq || N == Norm::kCosine) {
    (void)lp;
    return acc + q * r;  // inner product; the finish step maps it to a
                         // distance (−2·expansion or cosine normalization)
  } else if constexpr (N == Norm::kL1) {
    (void)lp;
    return acc + std::abs(q - r);
  } else if constexpr (N == Norm::kLInf) {
    (void)lp;
    // Mirror vmaxpd/vmaxps exactly (acc = src1, |q−r| = src2): on equality
    // or any NaN operand the *second* source is returned. std::max would
    // silently drop a NaN in the new term, making scalar and AVX runs
    // disagree on poisoned inputs; with this form (plus the driver's
    // panel poisoning of non-finite points) all SIMD levels produce the
    // same NaN distances, which the selection contract then rejects.
    const T t = std::abs(q - r);
    return (acc > t) ? acc : t;
  } else {
    return acc + static_cast<T>(std::pow(std::abs(static_cast<double>(q - r)), lp));
  }
}

template <Norm N, typename T>
void micro_impl(int dcur, const T* GSKNN_RESTRICT Qp,
                const T* GSKNN_RESTRICT Rp,
                const T* GSKNN_RESTRICT Cin, int ldin,
                T* GSKNN_RESTRICT Cout, int ldout, bool c_colmajor,
                const T* GSKNN_RESTRICT q2,
                const T* GSKNN_RESTRICT r2, bool finish, int rows,
                int cols, const SelectCtxT<T>* sel, double lp) {
  const auto cidx = [c_colmajor](int i, int j, int ld) {
    return c_colmajor ? static_cast<long>(j) * ld + i
                      : static_cast<long>(i) * ld + j;
  };
  T acc[kMr][kNr];
  if (Cin != nullptr) {
    for (int i = 0; i < kMr; ++i) {
      for (int j = 0; j < kNr; ++j) {
        acc[i][j] = Cin[cidx(i, j, ldin)];
      }
    }
  } else {
    for (int i = 0; i < kMr; ++i) {
      for (int j = 0; j < kNr; ++j) acc[i][j] = T(0);
    }
  }

  for (int p = 0; p < dcur; ++p) {
    const T* GSKNN_RESTRICT q = Qp + static_cast<long>(p) * kMr;
    const T* GSKNN_RESTRICT r = Rp + static_cast<long>(p) * kNr;
    for (int j = 0; j < kNr; ++j) {
      const T rj = r[j];
      for (int i = 0; i < kMr; ++i) {
        acc[i][j] = combine<N>(acc[i][j], q[i], rj, lp);
      }
    }
  }

  if (finish && N == Norm::kL2Sq) {
    // ‖q−r‖² = ‖q‖² + ‖r‖² − 2·qᵀr, clamped at zero against cancellation.
    // The clamp is written as the exact scalar equivalent of
    // _mm256_max_pd(zero, v) (src2 returned on NaN): a NaN expansion —
    // non-finite coordinates — must stay NaN, not turn into 0.
    for (int i = 0; i < kMr; ++i) {
      for (int j = 0; j < kNr; ++j) {
        const T v = static_cast<T>(q2[i] + r2[j] - T(2) * acc[i][j]);
        acc[i][j] = (T(0) > v) ? T(0) : v;
      }
    }
  }
  if (finish && N == Norm::kCosine) {
    // 1 − qᵀr/(‖q‖·‖r‖); zero-norm points (and zero-padded lanes) get
    // distance 1 via the guarded denominator. The guard tests denom <= 0
    // (not > 0) so a NaN denominator — non-finite coordinates — falls into
    // the NaN-producing division branch, matching the AVX _CMP_LE_OQ blend.
    for (int i = 0; i < kMr; ++i) {
      for (int j = 0; j < kNr; ++j) {
        const T denom = std::sqrt(q2[i] * r2[j]);
        acc[i][j] = (denom <= T(0)) ? T(1) : T(1) - acc[i][j] / denom;
      }
    }
  }

  if (sel != nullptr) {
    for (int j = 0; j < cols; ++j) {
      const int id = sel->cand_ids[j];
      for (int i = 0; i < rows; ++i) {
        if (sel_accepts(acc[i][j], id, sel->hd[i], sel->hi[i])) {
          sel_insert(*sel, i, acc[i][j], id);
        }
      }
    }
  }

  if (Cout != nullptr) {
    for (int i = 0; i < kMr; ++i) {
      for (int j = 0; j < kNr; ++j) {
        Cout[cidx(i, j, ldout)] = acc[i][j];
      }
    }
  }
}

}  // namespace

MicroFn micro_scalar(Norm norm) {
  switch (norm) {
    case Norm::kL2Sq:
      return micro_impl<Norm::kL2Sq, double>;
    case Norm::kL1:
      return micro_impl<Norm::kL1, double>;
    case Norm::kLInf:
      return micro_impl<Norm::kLInf, double>;
    case Norm::kLp:
      return micro_impl<Norm::kLp, double>;
    case Norm::kCosine:
      return micro_impl<Norm::kCosine, double>;
  }
  return micro_impl<Norm::kL2Sq, double>;
}

MicroFnT<float> micro_scalar_f32(Norm norm) {
  switch (norm) {
    case Norm::kL2Sq:
      return micro_impl<Norm::kL2Sq, float>;
    case Norm::kL1:
      return micro_impl<Norm::kL1, float>;
    case Norm::kLInf:
      return micro_impl<Norm::kLInf, float>;
    case Norm::kLp:
      return micro_impl<Norm::kLp, float>;
    case Norm::kCosine:
      return micro_impl<Norm::kCosine, float>;
  }
  return micro_impl<Norm::kL2Sq, float>;
}

MicroKernel select_micro(SimdLevel level, Norm norm) {
#if defined(GSKNN_BUILD_AVX512)
  if (level == SimdLevel::kAvx512 && norm != Norm::kLp) {
    const MicroKernel mk = micro_avx512(norm);
    if (mk.fn != nullptr) return mk;
  }
#endif
#if defined(GSKNN_BUILD_AVX2)
  if (level >= SimdLevel::kAvx2 && norm != Norm::kLp) {
    return MicroKernel{micro_avx2(norm), kMr, kNr};
  }
#else
  (void)level;
#endif
  return MicroKernel{micro_scalar(norm), kMr, kNr};
}

MicroKernelT<float> select_micro_f32(SimdLevel level, Norm norm) {
#if defined(GSKNN_BUILD_AVX512)
  if (level == SimdLevel::kAvx512 && norm != Norm::kLp) {
    const MicroKernelT<float> mk = micro_avx512_f32(norm);
    if (mk.fn != nullptr) return mk;
  }
#endif
#if defined(GSKNN_BUILD_AVX2)
  if (level >= SimdLevel::kAvx2 && norm != Norm::kLp) {
    const MicroKernelT<float> mk = micro_avx2_f32(norm);
    if (mk.fn != nullptr) return mk;
  }
#else
  (void)level;
#endif
  return MicroKernelT<float>{micro_scalar_f32(norm), kMr, kNr};
}

}  // namespace gsknn::core
