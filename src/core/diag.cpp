// Diagnostics bundles (see include/gsknn/core/diag.hpp).
#include "gsknn/core/diag.hpp"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "gsknn/common/arch.hpp"
#include "gsknn/common/flightrec.hpp"
#include "gsknn/common/metrics.hpp"
#include "gsknn/model/perf_model.hpp"

#ifndef GSKNN_GIT_DESCRIBE
#define GSKNN_GIT_DESCRIBE "unknown"
#endif

namespace gsknn::diag {

namespace {

void append_fmt(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

void append_escaped(std::string& out, const char* s) {
  out += '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          append_fmt(out, "\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

const char* simd_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kAvx2: return "avx2";
    case SimdLevel::kAvx512: return "avx512";
  }
  return "?";
}

// Every environment knob the library reads; a bundle records each as its
// value string or null so "what was this process actually configured to
// do" never needs a shell transcript.
const char* const kEnvKnobs[] = {
    "GSKNN_METRICS",          "GSKNN_FLIGHTREC",
    "GSKNN_FLIGHTREC_DUMP",   "GSKNN_FLIGHTREC_TRIGGER",
    "GSKNN_SLO_LATENCY_MS",   "GSKNN_SLO_LATENCY_TARGET",
    "GSKNN_SLO_AVAILABILITY", "GSKNN_MAX_WORKSPACE",
    "GSKNN_FAULT",            "GSKNN_PMU",
    "GSKNN_TRACE_RING_KB",    "GSKNN_MAX_SIMD",
    "GSKNN_FORCE_SCALAR",     "GSKNN_PREFETCH",
    "GSKNN_DEFER",            "GSKNN_THREADS",
    "GSKNN_BENCH_JSON",       "GSKNN_BENCH_QUICK",
};

void append_build(std::string& out) {
  out += "\"build\":{\"git\":";
  append_escaped(out, GSKNN_GIT_DESCRIBE);
  out += ",\"compiler\":";
#ifdef __VERSION__
  append_escaped(out, __VERSION__);
#else
  out += "null";
#endif
  append_fmt(out, ",\"cxx_standard\":%ld}", static_cast<long>(__cplusplus));
}

void append_arch(std::string& out) {
  const CpuFeatures& f = cpu_features();
  const CacheInfo& c = cache_info();
  const SimdLevel level = f.best_level();
  const BlockingParams bp = default_blocking(level);
  out += "\"arch\":{\"summary\":";
  append_escaped(out, arch_summary().c_str());
  append_fmt(out,
             ",\"simd_level\":\"%s\",\"features\":{\"sse2\":%s,\"avx\":%s,"
             "\"avx2\":%s,\"fma\":%s,\"avx512f\":%s}",
             simd_name(level), f.sse2 ? "true" : "false",
             f.avx ? "true" : "false", f.avx2 ? "true" : "false",
             f.fma ? "true" : "false", f.avx512f ? "true" : "false");
  append_fmt(out,
             ",\"caches\":{\"l1d\":%zu,\"l2\":%zu,\"l3\":%zu,\"line\":%zu}",
             c.l1d, c.l2, c.l3, c.line);
  append_fmt(out,
             ",\"blocking\":{\"mr\":%d,\"nr\":%d,\"dc\":%d,\"mc\":%d,"
             "\"nc\":%d}}",
             bp.mr, bp.nr, bp.dc, bp.mc, bp.nc);
}

void append_env(std::string& out) {
  out += "\"env\":{";
  bool first = true;
  for (const char* knob : kEnvKnobs) {
    append_fmt(out, "%s\"%s\":", first ? "" : ",", knob);
    const char* v = std::getenv(knob);
    if (v == nullptr) {
      out += "null";
    } else {
      append_escaped(out, v);
    }
    first = false;
  }
  out += '}';
}

void append_flightrec(std::string& out) {
  const std::vector<flightrec::Event> events = flightrec::drain();
  append_fmt(out, "\"flightrec\":{\"dropped\":%llu,\"events\":[",
             static_cast<unsigned long long>(flightrec::dropped()));
  bool first = true;
  for (const flightrec::Event& ev : events) {
    append_fmt(out, "%s{\"t_ns\":%llu,\"seq\":%llu,\"thread\":%d,"
                    "\"kind\":\"%s\",\"entry\":",
               first ? "" : ",", static_cast<unsigned long long>(ev.t_ns),
               static_cast<unsigned long long>(ev.seq), ev.thread_slot,
               flightrec::kind_name(ev.kind));
    if (ev.entry < 0) {
      out += "null";
    } else {
      append_fmt(out, "\"%s\"",
                 metrics::entry_point_name(
                     static_cast<metrics::EntryPoint>(ev.entry)));
    }
    append_fmt(out,
               ",\"status\":\"%s\",\"value\":%llu,\"m\":%u,\"n\":%u,"
               "\"d\":%u,\"k\":%u}",
               metrics::status_label(ev.status),
               static_cast<unsigned long long>(ev.value), ev.m, ev.n, ev.d,
               ev.k);
    first = false;
  }
  out += "]}";
}

/// The §2.6 model table: predicted per-method times and the chosen variant
/// over a (d, k) grid at the paper's serving shape (m = n = 8192) — the
/// calibration reference the drift histograms measure against.
void append_model(std::string& out) {
  const model::MachineParams mp{};
  const BlockingParams bp = default_blocking(cpu_features().best_level());
  append_fmt(out,
             "\"model\":{\"machine\":{\"peak_flops\":%.9g,\"tau_b\":%.9g,"
             "\"tau_l\":%.9g,\"eps\":%.9g},\"table\":[",
             mp.peak_flops, mp.tau_b, mp.tau_l, mp.eps);
  const int dims[] = {16, 64, 256, 1024};
  const int ks[] = {16, 128, 512, 2048};
  bool first = true;
  for (const int d : dims) {
    for (const int k : ks) {
      const model::ProblemShape s{8192, 8192, d, k};
      const double var1 =
          model::predicted_time(model::Method::kVar1, s, mp, bp);
      const double var6 =
          model::predicted_time(model::Method::kVar6, s, mp, bp);
      const double gemm =
          model::predicted_time(model::Method::kGemmBaseline, s, mp, bp);
      const model::Method chosen = model::choose_variant(s, mp, bp);
      append_fmt(out,
                 "%s{\"m\":8192,\"n\":8192,\"d\":%d,\"k\":%d,"
                 "\"var1_ms\":%.6g,\"var6_ms\":%.6g,\"gemm_ms\":%.6g,"
                 "\"var1_gflops\":%.6g,\"chosen\":\"%s\"}",
                 first ? "" : ",", d, k, var1 * 1e3, var6 * 1e3, gemm * 1e3,
                 model::predicted_gflops(model::Method::kVar1, s, mp, bp),
                 chosen == model::Method::kVar1 ? "var1" : "var6");
      first = false;
    }
  }
  out += "]}";
}

/// Serving-health section (docs/SERVING.md "Overload & degradation"): the
/// process-wide health gauge plus the rolling-window burn rates it was
/// derived from, so a triage bundle answers "was the server degraded, and
/// why" without a separate metrics scrape.
void append_health(std::string& out, const metrics::MetricsSnapshot& snap) {
  const int h = snap.serve_health;
  const char* state = h == 0 ? "healthy" : (h == 1 ? "degraded" : "unhealthy");
  append_fmt(out,
             "\"health\":{\"serve_health\":%d,\"state\":\"%s\","
             "\"window_latency_burn_rate\":%.9g,"
             "\"window_availability_burn_rate\":%.9g,"
             "\"window_calls\":%llu,\"window_errors\":%llu}",
             h, state, snap.window_latency_burn_rate(),
             snap.window_availability_burn_rate(),
             static_cast<unsigned long long>(snap.window_calls()),
             static_cast<unsigned long long>(snap.window_errors()));
}

bool trigger_dump_hook(const char* path, const char* reason) {
  if (path == nullptr) return false;
  return write_bundle(path, reason);
}

struct HookRegistrar {
  HookRegistrar() { flightrec::set_dump_hook(&trigger_dump_hook); }
};
HookRegistrar g_registrar;

}  // namespace

std::string bundle_json(const char* reason) {
  std::string out;
  out.reserve(1 << 16);
  out += "{\"diag_version\":1,\"reason\":";
  append_escaped(out, reason != nullptr ? reason : "api");
  out += ',';
  append_build(out);
  out += ',';
  append_arch(out);
  out += ',';
  append_env(out);
  const metrics::MetricsSnapshot snap = metrics::snapshot();
  out += ",\"metrics\":";
  out += snap.to_json();
  out += ',';
  append_health(out, snap);
  out += ',';
  append_flightrec(out);
  out += ',';
  append_model(out);
  out += '}';
  return out;
}

bool write_bundle(const char* path, const char* reason) {
  if (path == nullptr) return false;
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  const std::string text = bundle_json(reason);
  const std::size_t n = std::fwrite(text.data(), 1, text.size(), f);
  const bool complete = n == text.size();
  const bool closed = std::fclose(f) == 0;
  return complete && closed;
}

void ensure_trigger_hook() {
  flightrec::set_dump_hook(&trigger_dump_hook);
}

}  // namespace gsknn::diag
