// Task-parallel batch driver (§2.5).
//
// Many independent small kernels (one per tree leaf in the approximate
// solvers) rarely expose enough intra-kernel parallelism, so the paper
// schedules whole kernels across cores instead: estimate each kernel's
// runtime with the §2.6 model, sort descending, and greedily assign to the
// least-loaded processor (first-termination / LPT list scheduling).
#include <vector>

#include "gsknn/common/telemetry.hpp"
#include "gsknn/common/threads.hpp"
#include "gsknn/common/timer.hpp"
#include "gsknn/core/knn.hpp"
#include "gsknn/model/perf_model.hpp"

namespace gsknn {

void knn_batch(const PointTable& X, std::span<const KnnTask> tasks, int k,
               const KnnConfig& cfg) {
  const int t = static_cast<int>(tasks.size());
  if (t == 0) return;
  const int p = resolve_threads(cfg.threads);

  // Validate every task before the OpenMP region (a worker-side StatusError
  // could not propagate out of #pragma omp parallel). One bad task fails the
  // whole batch up front, before any task has run.
  for (int i = 0; i < t; ++i) {
    const auto& task = tasks[static_cast<std::size_t>(i)];
    if (task.result == nullptr) {
      throw StatusError(Status::kInvalidArgument,
                        "gsknn: batch task has a null result table");
    }
    check_knn_args(X, task.qidx, task.ridx, *task.result, cfg,
                   task.result_rows);
  }

  // Estimate per-task runtimes with the performance model.
  static const model::MachineParams mp{};
  const BlockingParams bp =
      cfg.blocking.value_or(default_blocking(cpu_features().best_level()));
  std::vector<double> est(static_cast<std::size_t>(t));
  for (int i = 0; i < t; ++i) {
    const auto& task = tasks[static_cast<std::size_t>(i)];
    const model::ProblemShape s{static_cast<int>(task.qidx.size()),
                                static_cast<int>(task.ridx.size()), X.dim(),
                                k};
    const Variant v = resolve_variant(s.m, s.n, s.d, s.k, cfg);
    est[static_cast<std::size_t>(i)] = model::predicted_time(
        v == Variant::kVar1 ? model::Method::kVar1 : model::Method::kVar6, s,
        mp, bp);
  }

  const std::vector<int> assignment = model::schedule_lpt(est, p);

  // Telemetry: per-worker private profiles (workers run concurrently and
  // must not share the caller's sink), merged after the region.
  const bool prof = (cfg.profile != nullptr);
  WallTimer wall_timer;
  std::vector<telemetry::KernelProfile> wprof(
      prof ? static_cast<std::size_t>(p) : 0);

  // Each worker executes its tasks sequentially; kernels run single-threaded.
  // task_cfg copies cfg wholesale, so a TraceSink on cfg.trace is shared by
  // every task kernel (safe: per-thread rings) — the exported timeline shows
  // the LPT schedule directly, one track per worker.
  KnnConfig task_cfg = cfg;
  task_cfg.threads = 1;
  // Tasks were validated above; skip re-validation inside the workers.
  task_cfg.validate = false;
#if defined(GSKNN_HAVE_OPENMP)
#pragma omp parallel num_threads(p)
#endif
  {
    const int tid = thread_id();
    KnnConfig my_cfg = task_cfg;
    my_cfg.profile = prof ? &wprof[static_cast<std::size_t>(tid)] : nullptr;
    for (int i = 0; i < t; ++i) {
      if (assignment[static_cast<std::size_t>(i)] != tid) continue;
      const auto& task = tasks[static_cast<std::size_t>(i)];
      knn_kernel(X, task.qidx, task.ridx, *task.result, my_cfg,
                 task.result_rows);
    }
  }

  if (prof) {
    telemetry::KernelProfile combined;
    for (const auto& wp : wprof) combined.merge(wp);
    // As with parallel_refs: report the batch's real elapsed time; the
    // summed phases are total busy time across all task kernels.
    combined.wall_seconds = wall_timer.seconds();
    combined.algorithm = "gsknn_batch";
    combined.threads = p;
    cfg.profile->merge(combined);
  }
}

}  // namespace gsknn
