// Task-parallel batch driver (§2.5).
//
// Many independent small kernels (one per tree leaf in the approximate
// solvers) rarely expose enough intra-kernel parallelism, so the paper
// schedules whole kernels across cores instead: estimate each kernel's
// runtime with the §2.6 model, sort descending, and greedily assign to the
// least-loaded processor (first-termination / LPT list scheduling).
//
// Governance: cancellation/deadline is polled between tasks (and inside
// each task kernel, at its block boundaries); on a stop, not-yet-started
// tasks are skipped with their result rows flagged incomplete. Tasks that
// share one NeighborTable must target disjoint rows — overlap is rejected
// up front (it would be a silent data race between workers).
#include <atomic>
#include <climits>
#include <new>
#include <unordered_map>
#include <vector>

#include "gsknn/common/fault.hpp"
#include "gsknn/common/metrics.hpp"
#include "gsknn/common/telemetry.hpp"
#include "gsknn/common/threads.hpp"
#include "gsknn/common/timer.hpp"
#include "gsknn/core/entry_metrics.hpp"
#include "gsknn/core/knn.hpp"
#include "gsknn/core/packed_refs.hpp"
#include "gsknn/model/perf_model.hpp"

namespace gsknn {

namespace {

/// Flag every result row a task owns as incomplete (skipped/starved tasks).
/// Disjointness of rows across tasks sharing a table (validated below) makes
/// concurrent marking from several workers race-free — distinct bytes.
void mark_task_incomplete(const KnnTask& task) {
  if (!task.result_rows.empty()) {
    for (const int r : task.result_rows) task.result->mark_row_incomplete(r);
  } else {
    const int mq = static_cast<int>(task.qidx.size());
    for (int i = 0; i < mq; ++i) task.result->mark_row_incomplete(i);
  }
}

void mark_task_incomplete(const PackedKnnTask& task) {
  if (!task.result_rows.empty()) {
    for (const int r : task.result_rows) task.result->mark_row_incomplete(r);
  } else {
    const int mq = static_cast<int>(task.qidx.size());
    for (int i = 0; i < mq; ++i) task.result->mark_row_incomplete(i);
  }
}

Status knn_batch_impl(const PointTable& X, std::span<const KnnTask> tasks,
                      int k, const KnnConfig& cfg) {
  const int t = static_cast<int>(tasks.size());
  if (t == 0) return Status::kOk;
  const int p = resolve_threads(cfg.threads);

  // Validate every task before the OpenMP region (a worker-side StatusError
  // could not propagate out of #pragma omp parallel). One bad task fails the
  // whole batch up front, before any task has run.
  for (int i = 0; i < t; ++i) {
    const auto& task = tasks[static_cast<std::size_t>(i)];
    if (task.result == nullptr) {
      throw StatusError(Status::kInvalidArgument,
                        "gsknn: batch task has a null result table");
    }
    check_knn_args(X, task.qidx, task.ridx, *task.result, cfg,
                   task.result_rows);
  }

  // Tasks may share a NeighborTable only on disjoint rows (the tree solvers'
  // global-table pattern). Overlap would let two concurrent workers sift the
  // same heap — a silent race — so reject it here, where check_knn_args has
  // already bounds-checked every row list. A task without result_rows owns
  // rows [0, m) of its table.
  std::unordered_map<const NeighborTable*, std::vector<unsigned char>> used;
  for (int i = 0; i < t; ++i) {
    const auto& task = tasks[static_cast<std::size_t>(i)];
    auto& rows_used = used[task.result];
    if (rows_used.empty()) {
      rows_used.assign(static_cast<std::size_t>(task.result->rows()), 0);
    }
    const int mq = static_cast<int>(task.qidx.size());
    for (int qi = 0; qi < mq; ++qi) {
      const int r = task.result_rows.empty()
                        ? qi
                        : task.result_rows[static_cast<std::size_t>(qi)];
      if (rows_used[static_cast<std::size_t>(r)] != 0) {
        throw StatusError(
            Status::kInvalidArgument,
            "gsknn: batch tasks write overlapping rows of a shared result "
            "table");
      }
      rows_used[static_cast<std::size_t>(r)] = 1;
    }
  }

  // Estimate per-task runtimes with the performance model.
  static const model::MachineParams mp{};
  const BlockingParams bp =
      cfg.blocking.value_or(default_blocking(cpu_features().best_level()));
  std::vector<double> est(static_cast<std::size_t>(t));
  for (int i = 0; i < t; ++i) {
    const auto& task = tasks[static_cast<std::size_t>(i)];
    const model::ProblemShape s{static_cast<int>(task.qidx.size()),
                                static_cast<int>(task.ridx.size()), X.dim(),
                                k};
    const Variant v = resolve_variant(s.m, s.n, s.d, s.k, cfg);
    est[static_cast<std::size_t>(i)] = model::predicted_time(
        v == Variant::kVar1 ? model::Method::kVar1 : model::Method::kVar6, s,
        mp, bp);
  }

  const std::vector<int> assignment = model::schedule_lpt(est, p);

  // Telemetry: per-worker private profiles (workers run concurrently and
  // must not share the caller's sink), merged after the region.
  const bool prof = (cfg.profile != nullptr);
  WallTimer wall_timer;
  std::vector<telemetry::KernelProfile> wprof(
      prof ? static_cast<std::size_t>(p) : 0);

  // Batch-level stop: first pressure status wins; once set, every worker
  // skips its remaining tasks (flagging their rows). The task kernels poll
  // the same token/deadline at their own block boundaries, so an in-flight
  // task stops at block granularity, not task granularity.
  std::atomic<int> stop{0};
  const bool governed =
      cfg.cancel != nullptr || cfg.deadline.has_value() || fault::active();
  const auto poll_status = [&cfg]() {
    if (fault::active() && fault::inject_cancel()) return Status::kCancelled;
    if (cfg.cancel != nullptr && cfg.cancel->cancelled()) {
      return Status::kCancelled;
    }
    if (cfg.deadline.has_value() && deadline_expired(*cfg.deadline)) {
      return Status::kDeadlineExceeded;
    }
    return Status::kOk;
  };

  // Each worker executes its tasks sequentially; kernels run single-threaded.
  // task_cfg copies cfg wholesale, so a TraceSink on cfg.trace is shared by
  // every task kernel (safe: per-thread rings) — the exported timeline shows
  // the LPT schedule directly, one track per worker — and the deadline/cancel
  // token rides into every task kernel the same way.
  KnnConfig task_cfg = cfg;
  task_cfg.threads = 1;
  // Tasks were validated above; skip re-validation inside the workers.
  task_cfg.validate = false;
#if defined(GSKNN_HAVE_OPENMP)
#pragma omp parallel num_threads(p)
#endif
  {
    const int tid = thread_id();
    // The LPT schedule targeted p workers, but the delivered team can be
    // smaller (nested parallelism with max-active-levels, runtime caps).
    // Fold the absent workers' queues onto live threads — owner % nt — so
    // every task runs exactly once; with a full team the fold is the
    // identity and the schedule is untouched. Before this remap, tasks
    // assigned to absent workers silently never ran and their result rows
    // were reported complete while holding stale sentinels.
    const int nt = team_size();
    KnnConfig my_cfg = task_cfg;
    my_cfg.profile = prof ? &wprof[static_cast<std::size_t>(tid)] : nullptr;
    for (int i = 0; i < t; ++i) {
      if (assignment[static_cast<std::size_t>(i)] % nt != tid) continue;
      const auto& task = tasks[static_cast<std::size_t>(i)];
      if (stop.load(std::memory_order_relaxed) != 0) {
        mark_task_incomplete(task);
        continue;
      }
      if (governed) {
        const Status ps = poll_status();
        if (ps != Status::kOk) {
          int expected = 0;
          stop.compare_exchange_strong(expected, static_cast<int>(ps),
                                       std::memory_order_relaxed);
          mark_task_incomplete(task);
          continue;
        }
      }
      const Status s = knn_kernel_status(X, task.qidx, task.ridx,
                                         *task.result, my_cfg,
                                         task.result_rows);
      if (s != Status::kOk) {
        // kCancelled/kDeadlineExceeded already flagged the rows the kernel
        // could not finish; exhaustion/internal left rows untouched and
        // unflagged, so flag the whole task.
        if (s != Status::kCancelled && s != Status::kDeadlineExceeded) {
          mark_task_incomplete(task);
        }
        int expected = 0;
        stop.compare_exchange_strong(expected, static_cast<int>(s),
                                     std::memory_order_relaxed);
      }
    }
  }

  if (prof) {
    telemetry::KernelProfile combined;
    for (const auto& wp : wprof) combined.merge(wp);
    // As with parallel_refs: report the batch's real elapsed time; the
    // summed phases are total busy time across all task kernels.
    combined.wall_seconds = wall_timer.seconds();
    combined.algorithm = "gsknn_batch";
    combined.threads = p;
    cfg.profile->merge(combined);
  }
  return static_cast<Status>(stop.load(std::memory_order_acquire));
}

/// Packed batch: same LPT scheduling and governance as knn_batch_impl, but
/// every task queries one shared PackedRefs cache — workers run the warm
/// single-threaded kernel, so a block is packed at most once across the
/// whole batch (the cache's pin counts make concurrent leases safe) and
/// repeat traffic moves zero packed reference bytes.
Status knn_batch_packed_impl(PackedRefs& refs,
                             std::span<const PackedKnnTask> tasks, int k,
                             const KnnConfig& cfg,
                             std::uint64_t expected_epoch) {
  const int t = static_cast<int>(tasks.size());
  if (!refs.built()) {
    throw StatusError(Status::kInvalidArgument,
                      "gsknn: PackedRefs::build() has not succeeded");
  }
  if (t == 0) return Status::kOk;
  const int p = resolve_threads(cfg.threads);
  const PointTable& X = *refs.table();
  // One atomic (id list, epoch) capture for the whole batch: validation,
  // scheduling and every task kernel run against this generation, immune to
  // a concurrent insert()/erase() swapping the list mid-batch.
  const PackedRefs::Snapshot snap = refs.snapshot();
  const std::span<const int> ridx(*snap.ids);

  for (int i = 0; i < t; ++i) {
    const auto& task = tasks[static_cast<std::size_t>(i)];
    if (task.result == nullptr) {
      throw StatusError(Status::kInvalidArgument,
                        "gsknn: batch task has a null result table");
    }
    check_knn_args(X, task.qidx, ridx, *task.result, cfg, task.result_rows);
  }
  // Batch-level epoch handshake, after validation and before any task runs:
  // a stale batch touches nothing. kEpochAny resolves to the entry epoch
  // here, and every task kernel pins its blocks against that resolved
  // generation — an update racing the batch stops affected tasks with a
  // clean kStale (rows flagged incomplete) instead of mixing generations.
  if (expected_epoch != kEpochAny && expected_epoch != snap.epoch) {
    return Status::kStale;
  }
  const std::uint64_t run_epoch = snap.epoch;

  std::unordered_map<const NeighborTable*, std::vector<unsigned char>> used;
  for (int i = 0; i < t; ++i) {
    const auto& task = tasks[static_cast<std::size_t>(i)];
    auto& rows_used = used[task.result];
    if (rows_used.empty()) {
      rows_used.assign(static_cast<std::size_t>(task.result->rows()), 0);
    }
    const int mq = static_cast<int>(task.qidx.size());
    for (int qi = 0; qi < mq; ++qi) {
      const int r = task.result_rows.empty()
                        ? qi
                        : task.result_rows[static_cast<std::size_t>(qi)];
      if (rows_used[static_cast<std::size_t>(r)] != 0) {
        throw StatusError(
            Status::kInvalidArgument,
            "gsknn: batch tasks write overlapping rows of a shared result "
            "table");
      }
      rows_used[static_cast<std::size_t>(r)] = 1;
    }
  }

  // LPT scheduling over the model estimates; every task shares n = |refs|,
  // so the estimates differ only through m.
  static const model::MachineParams mp{};
  const BlockingParams bp = refs.blocking();
  std::vector<double> est(static_cast<std::size_t>(t));
  for (int i = 0; i < t; ++i) {
    const auto& task = tasks[static_cast<std::size_t>(i)];
    const model::ProblemShape s{static_cast<int>(task.qidx.size()),
                                static_cast<int>(ridx.size()), X.dim(), k};
    const Variant v = resolve_variant(s.m, s.n, s.d, s.k, cfg);
    est[static_cast<std::size_t>(i)] = model::predicted_time(
        v == Variant::kVar1 ? model::Method::kVar1 : model::Method::kVar6, s,
        mp, bp);
  }
  const std::vector<int> assignment = model::schedule_lpt(est, p);

  const bool prof = (cfg.profile != nullptr);
  WallTimer wall_timer;
  std::vector<telemetry::KernelProfile> wprof(
      prof ? static_cast<std::size_t>(p) : 0);

  std::atomic<int> stop{0};
  const bool governed =
      cfg.cancel != nullptr || cfg.deadline.has_value() || fault::active();
  const auto poll_status = [&cfg]() {
    if (fault::active() && fault::inject_cancel()) return Status::kCancelled;
    if (cfg.cancel != nullptr && cfg.cancel->cancelled()) {
      return Status::kCancelled;
    }
    if (cfg.deadline.has_value() && deadline_expired(*cfg.deadline)) {
      return Status::kDeadlineExceeded;
    }
    return Status::kOk;
  };

  KnnConfig task_cfg = cfg;
  task_cfg.threads = 1;
  task_cfg.validate = false;
#if defined(GSKNN_HAVE_OPENMP)
#pragma omp parallel num_threads(p)
#endif
  {
    const int tid = thread_id();
    // Same absent-worker fold as knn_batch_impl: the delivered team can be
    // smaller than the p the LPT schedule targeted.
    const int nt = team_size();
    KnnConfig my_cfg = task_cfg;
    my_cfg.profile = prof ? &wprof[static_cast<std::size_t>(tid)] : nullptr;
    for (int i = 0; i < t; ++i) {
      if (assignment[static_cast<std::size_t>(i)] % nt != tid) continue;
      const auto& task = tasks[static_cast<std::size_t>(i)];
      if (stop.load(std::memory_order_relaxed) != 0) {
        mark_task_incomplete(task);
        continue;
      }
      if (governed) {
        const Status ps = poll_status();
        if (ps != Status::kOk) {
          int expected = 0;
          stop.compare_exchange_strong(expected, static_cast<int>(ps),
                                       std::memory_order_relaxed);
          mark_task_incomplete(task);
          continue;
        }
      }
      const Status s = knn_kernel_status(refs, task.qidx, *task.result,
                                         my_cfg, task.result_rows,
                                         run_epoch);
      if (s != Status::kOk) {
        if (s != Status::kCancelled && s != Status::kDeadlineExceeded) {
          mark_task_incomplete(task);
        }
        int expected = 0;
        stop.compare_exchange_strong(expected, static_cast<int>(s),
                                     std::memory_order_relaxed);
      }
    }
  }

  if (prof) {
    telemetry::KernelProfile combined;
    for (const auto& wp : wprof) combined.merge(wp);
    combined.wall_seconds = wall_timer.seconds();
    combined.algorithm = "gsknn_batch";
    combined.threads = p;
    cfg.profile->merge(combined);
  }
  return static_cast<Status>(stop.load(std::memory_order_acquire));
}

/// Batch-level shape for the aggregate metrics: queries/references summed
/// across tasks (each task's kernel records its own exact shape too).
void batch_totals(std::span<const KnnTask> tasks, int& m_total,
                  int& n_total) {
  std::size_t m = 0, n = 0;
  for (const KnnTask& t : tasks) {
    m += t.qidx.size();
    n += t.ridx.size();
  }
  m_total = m > static_cast<std::size_t>(INT_MAX) ? INT_MAX
                                                  : static_cast<int>(m);
  n_total = n > static_cast<std::size_t>(INT_MAX) ? INT_MAX
                                                  : static_cast<int>(n);
}

void packed_batch_totals(const PackedRefs& refs,
                         std::span<const PackedKnnTask> tasks, int& m_total,
                         int& n_total) {
  std::size_t m = 0;
  for (const PackedKnnTask& t : tasks) m += t.qidx.size();
  m_total = m > static_cast<std::size_t>(INT_MAX) ? INT_MAX
                                                  : static_cast<int>(m);
  const std::size_t n = tasks.size() * static_cast<std::size_t>(refs.size());
  n_total = n > static_cast<std::size_t>(INT_MAX) ? INT_MAX
                                                  : static_cast<int>(n);
}

}  // namespace

void knn_batch(const PointTable& X, std::span<const KnnTask> tasks, int k,
               const KnnConfig& cfg) {
  int m_total = 0, n_total = 0;
  batch_totals(tasks, m_total, n_total);
  const Status s = core::record_entry_status(
      metrics::EntryPoint::kBatch, m_total, n_total, X.dim(), k,
      [&] { return knn_batch_impl(X, tasks, k, cfg); });
  if (s != Status::kOk) {
    throw StatusError(s, std::string("gsknn: batch stopped: ") +
                             status_name(s));
  }
}

Status knn_batch_status(const PointTable& X, std::span<const KnnTask> tasks,
                        int k, const KnnConfig& cfg) {
  int m_total = 0, n_total = 0;
  batch_totals(tasks, m_total, n_total);
  try {
    return core::record_entry_status(
        metrics::EntryPoint::kBatch, m_total, n_total, X.dim(), k,
        [&] { return knn_batch_impl(X, tasks, k, cfg); });
  } catch (const StatusError& e) {
    return e.status();
  } catch (const std::bad_alloc&) {
    return Status::kResourceExhausted;
  }
}

void knn_batch(PackedRefs& refs, std::span<const PackedKnnTask> tasks, int k,
               const KnnConfig& cfg, std::uint64_t expected_epoch) {
  int m_total = 0, n_total = 0;
  packed_batch_totals(refs, tasks, m_total, n_total);
  const int d = refs.built() ? refs.table()->dim() : 0;
  const Status s = core::record_entry_status(
      metrics::EntryPoint::kBatch, m_total, n_total, d, k, [&] {
        return knn_batch_packed_impl(refs, tasks, k, cfg, expected_epoch);
      });
  if (s != Status::kOk) {
    throw StatusError(s, std::string("gsknn: batch stopped: ") +
                             status_name(s));
  }
}

Status knn_batch_status(PackedRefs& refs,
                        std::span<const PackedKnnTask> tasks, int k,
                        const KnnConfig& cfg, std::uint64_t expected_epoch) {
  int m_total = 0, n_total = 0;
  packed_batch_totals(refs, tasks, m_total, n_total);
  const int d = refs.built() ? refs.table()->dim() : 0;
  try {
    return core::record_entry_status(
        metrics::EntryPoint::kBatch, m_total, n_total, d, k, [&] {
          return knn_batch_packed_impl(refs, tasks, k, cfg, expected_epoch);
        });
  } catch (const StatusError& e) {
    return e.status();
  } catch (const std::bad_alloc&) {
    return Status::kResourceExhausted;
  }
}

}  // namespace gsknn
