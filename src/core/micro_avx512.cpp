// AVX-512F fused micro-kernels (16×4 doubles).
//
// The port the paper's conclusion promises ("porting GSKNN to future x86
// architectures only requires changing the block size and rewriting the
// micro-kernel"): relative to the AVX2 kernel the tile doubles its row
// count (two 8-wide zmm accumulator halves per column, eight independent
// FMA chains), the selection prefilter uses native compare masks, and
// everything else — packing, blocking, variants — is untouched because the
// driver reads the tile geometry from MicroKernel.
#include "micro.hpp"

#if defined(GSKNN_BUILD_AVX512)

#include <immintrin.h>

namespace gsknn::core {

namespace {

inline constexpr int kMr512 = 16;
inline constexpr int kNr512 = 4;

/// In-register 4×4 double transpose on ymm rows (for the query-major tile
/// layout; identical to the AVX2 helper).
GSKNN_ALWAYS_INLINE void transpose4y(__m256d& a, __m256d& b, __m256d& c,
                                     __m256d& d) {
  const __m256d t0 = _mm256_unpacklo_pd(a, b);
  const __m256d t1 = _mm256_unpackhi_pd(a, b);
  const __m256d t2 = _mm256_unpacklo_pd(c, d);
  const __m256d t3 = _mm256_unpackhi_pd(c, d);
  a = _mm256_permute2f128_pd(t0, t2, 0x20);
  b = _mm256_permute2f128_pd(t1, t3, 0x20);
  c = _mm256_permute2f128_pd(t0, t2, 0x31);
  d = _mm256_permute2f128_pd(t1, t3, 0x31);
}

GSKNN_ALWAYS_INLINE __m512d abs512(__m512d v) {
  return _mm512_abs_pd(v);
}

template <Norm N>
GSKNN_ALWAYS_INLINE void combine1(__m512d& accA, __m512d& accB, __m512d qa,
                                  __m512d qb, __m512d rb) {
  if constexpr (N == Norm::kL2Sq || N == Norm::kCosine) {
    accA = _mm512_fmadd_pd(qa, rb, accA);
    accB = _mm512_fmadd_pd(qb, rb, accB);
  } else if constexpr (N == Norm::kL1) {
    accA = _mm512_add_pd(accA, abs512(_mm512_sub_pd(qa, rb)));
    accB = _mm512_add_pd(accB, abs512(_mm512_sub_pd(qb, rb)));
  } else {  // kLInf
    accA = _mm512_max_pd(accA, abs512(_mm512_sub_pd(qa, rb)));
    accB = _mm512_max_pd(accB, abs512(_mm512_sub_pd(qb, rb)));
  }
}

/// ℓ2 finish for one column: max(0, q2 + r2 − 2·acc).
GSKNN_ALWAYS_INLINE __m512d finish_l2(__m512d acc, __m512d q2v, __m512d r2b) {
  const __m512d two = _mm512_set1_pd(2.0);
  return _mm512_max_pd(_mm512_setzero_pd(),
                       _mm512_fnmadd_pd(two, acc, _mm512_add_pd(q2v, r2b)));
}

/// Cosine finish for one column: 1 − acc/√(q2·r2), degenerate lanes → 1.
GSKNN_ALWAYS_INLINE __m512d finish_cos(__m512d acc, __m512d q2v, __m512d r2b) {
  const __m512d one = _mm512_set1_pd(1.0);
  const __m512d denom = _mm512_sqrt_pd(_mm512_mul_pd(q2v, r2b));
  const __m512d dist = _mm512_sub_pd(one, _mm512_div_pd(acc, denom));
  const __mmask8 degenerate =
      _mm512_cmp_pd_mask(denom, _mm512_setzero_pd(), _CMP_LE_OQ);
  return _mm512_mask_blend_pd(degenerate, dist, one);
}

/// Selection for one finished column (native compare masks).
GSKNN_ALWAYS_INLINE void select_col512(const SelectCtx& sel, int j,
                                       __m512d colA, __m512d colB,
                                       __m512d rootsA, __m512d rootsB,
                                       int rows) {
  // `<=` (ordered) prefilter: root ties survive to the scalar re-check,
  // which applies the full lexicographic (distance, id) accept; NaN
  // distances never pass. Mirrors the AVX2 and scalar paths exactly.
  const __mmask8 ma = _mm512_cmp_pd_mask(colA, rootsA, _CMP_LE_OQ);
  const __mmask8 mb = _mm512_cmp_pd_mask(colB, rootsB, _CMP_LE_OQ);
  unsigned mask = static_cast<unsigned>(ma) | (static_cast<unsigned>(mb) << 8);
  if (GSKNN_LIKELY(mask == 0)) return;
  alignas(64) double col[kMr512];
  _mm512_store_pd(col, colA);
  _mm512_store_pd(col + 8, colB);
  const int id = sel.cand_ids[j];
  while (mask != 0) {
    const int i = __builtin_ctz(mask);
    mask &= mask - 1;
    if (i < rows && sel_accepts(col[i], id, sel.hd[i], sel.hi[i])) {
      sel_insert(sel, i, col[i], id);
    }
  }
}

/// Deferred selection for one finished column: native vcompresspd packs
/// the passing distances contiguously, a parallel epi32 compress of the
/// constant row-index vector records which tile rows they belong to, and a
/// short count-bounded loop appends to the per-row candidate buffers (the
/// heap sift happens at flush, off the tile loop's critical path).
GSKNN_ALWAYS_INLINE void defer_col512(const SelectCtx& sel, int j,
                                      __m512d colA, __m512d colB,
                                      __m512d rootsA, __m512d rootsB) {
  const __mmask8 ma = _mm512_cmp_pd_mask(colA, rootsA, _CMP_LE_OQ);
  const __mmask8 mb = _mm512_cmp_pd_mask(colB, rootsB, _CMP_LE_OQ);
  const unsigned m16 =
      static_cast<unsigned>(ma) | (static_cast<unsigned>(mb) << 8);
  if (GSKNN_LIKELY(m16 == 0)) return;
  alignas(64) double sd[kMr512];
  alignas(64) int sr[kMr512];
  const int ca = __builtin_popcount(static_cast<unsigned>(ma));
  _mm512_mask_compressstoreu_pd(sd, ma, colA);
  _mm512_mask_compressstoreu_pd(sd + ca, mb, colB);
  const __m512i rows16 = _mm512_set_epi32(15, 14, 13, 12, 11, 10, 9, 8, 7, 6,
                                          5, 4, 3, 2, 1, 0);
  _mm512_mask_compressstoreu_epi32(sr, static_cast<__mmask16>(m16), rows16);
  const int total = __builtin_popcount(m16);
  const int id = sel.cand_ids[j];
  for (int t = 0; t < total; ++t) {
    sel_defer(sel, sr[t], sd[t], id);
  }
}

/// Gather a root vector for rows [base, base+8) of the tile.
GSKNN_ALWAYS_INLINE __m512d gather_roots(const SelectCtx& sel, int base) {
  return _mm512_set_pd(sel.hd[base + 7][0], sel.hd[base + 6][0],
                       sel.hd[base + 5][0], sel.hd[base + 4][0],
                       sel.hd[base + 3][0], sel.hd[base + 2][0],
                       sel.hd[base + 1][0], sel.hd[base + 0][0]);
}

/// Deferred-selection tile epilogue. Kept out of line so the common
/// immediate-select path keeps the seed kernel's code size; inlining the
/// compress-store machinery into every norm instantiation measurably slowed
/// all k (icache; see EXPERIMENTS.md "Hot-path tuning"). Roots are gathered
/// here, not passed, to keep the eight accumulators within the vector
/// argument registers (zmm0–7 per the ABI).
GSKNN_NOINLINE void defer_tile512(const SelectCtx& sel, __m512d a0, __m512d b0,
                                  __m512d a1, __m512d b1, __m512d a2,
                                  __m512d b2, __m512d a3, __m512d b3,
                                  int cols) {
  const __m512d rootsA = gather_roots(sel, 0);
  const __m512d rootsB = gather_roots(sel, 8);
  defer_col512(sel, 0, a0, b0, rootsA, rootsB);
  if (cols > 1) defer_col512(sel, 1, a1, b1, rootsA, rootsB);
  if (cols > 2) defer_col512(sel, 2, a2, b2, rootsA, rootsB);
  if (cols > 3) defer_col512(sel, 3, a3, b3, rootsA, rootsB);
}

template <Norm N>
void micro_avx512_impl(int dcur, const double* GSKNN_RESTRICT Qp,
                       const double* GSKNN_RESTRICT Rp,
                       const double* GSKNN_RESTRICT Cin, int ldin,
                       double* GSKNN_RESTRICT Cout, int ldout, bool c_colmajor,
                       const double* GSKNN_RESTRICT q2,
                       const double* GSKNN_RESTRICT r2, bool finish, int rows,
                       int cols, const SelectCtx* sel, double lp) {
  (void)lp;
  // Column j: rows 0..7 in a[j], rows 8..15 in b[j] — named, never arrayed
  // (address-taken accumulators spill; see micro_avx2.cpp).
  __m512d a0, a1, a2, a3, b0, b1, b2, b3;

  if (Cin != nullptr) {
    if (c_colmajor) {
      a0 = _mm512_loadu_pd(Cin + 0L * ldin);
      b0 = _mm512_loadu_pd(Cin + 0L * ldin + 8);
      a1 = _mm512_loadu_pd(Cin + 1L * ldin);
      b1 = _mm512_loadu_pd(Cin + 1L * ldin + 8);
      a2 = _mm512_loadu_pd(Cin + 2L * ldin);
      b2 = _mm512_loadu_pd(Cin + 2L * ldin + 8);
      a3 = _mm512_loadu_pd(Cin + 3L * ldin);
      b3 = _mm512_loadu_pd(Cin + 3L * ldin + 8);
    } else {
      // Query-major: 16 rows of 4; transpose each 4-row group and assemble
      // the zmm halves.
      __m256d g[4][4];
      for (int grp = 0; grp < 4; ++grp) {
        __m256d r0v = _mm256_loadu_pd(Cin + (4L * grp + 0) * ldin);
        __m256d r1v = _mm256_loadu_pd(Cin + (4L * grp + 1) * ldin);
        __m256d r2v = _mm256_loadu_pd(Cin + (4L * grp + 2) * ldin);
        __m256d r3v = _mm256_loadu_pd(Cin + (4L * grp + 3) * ldin);
        transpose4y(r0v, r1v, r2v, r3v);
        g[grp][0] = r0v;  // column 0, rows 4grp..4grp+3
        g[grp][1] = r1v;
        g[grp][2] = r2v;
        g[grp][3] = r3v;
      }
      const auto join = [](__m256d lo, __m256d hi) {
        return _mm512_insertf64x4(_mm512_castpd256_pd512(lo), hi, 1);
      };
      a0 = join(g[0][0], g[1][0]);
      a1 = join(g[0][1], g[1][1]);
      a2 = join(g[0][2], g[1][2]);
      a3 = join(g[0][3], g[1][3]);
      b0 = join(g[2][0], g[3][0]);
      b1 = join(g[2][1], g[3][1]);
      b2 = join(g[2][2], g[3][2]);
      b3 = join(g[2][3], g[3][3]);
    }
  } else {
    a0 = a1 = a2 = a3 = _mm512_setzero_pd();
    b0 = b1 = b2 = b3 = _mm512_setzero_pd();
  }

  // Only the Q panel gets a software prefetch: it is the loop's widest
  // stream (kMr512 doubles per iteration) and the fixed look-ahead keeps its
  // next lines in flight. Prefetching the narrower R panel or the heap roots
  // as well was measured slower (load-port contention in a loop that
  // saturates them; the roots stay L2-resident across jr sweeps anyway) —
  // see EXPERIMENTS.md "Hot-path tuning".
  const double* ap = Qp;
  const double* bp = Rp;
  for (int p = 0; p < dcur; ++p) {
    const __m512d qa = _mm512_load_pd(ap);
    const __m512d qb = _mm512_load_pd(ap + 8);
    GSKNN_PREFETCH_R(ap + kMicroQPrefetchIters * kMr512);
    __m512d rb = _mm512_set1_pd(bp[0]);
    combine1<N>(a0, b0, qa, qb, rb);
    rb = _mm512_set1_pd(bp[1]);
    combine1<N>(a1, b1, qa, qb, rb);
    rb = _mm512_set1_pd(bp[2]);
    combine1<N>(a2, b2, qa, qb, rb);
    rb = _mm512_set1_pd(bp[3]);
    combine1<N>(a3, b3, qa, qb, rb);
    ap += kMr512;
    bp += kNr512;
  }

  if (finish && (N == Norm::kL2Sq || N == Norm::kCosine)) {
    const __m512d q2a = _mm512_load_pd(q2);
    const __m512d q2b = _mm512_load_pd(q2 + 8);
    const auto fin = [&](__m512d acc, __m512d q2v, double r2j) {
      const __m512d r2b = _mm512_set1_pd(r2j);
      if constexpr (N == Norm::kCosine) {
        return finish_cos(acc, q2v, r2b);
      } else {
        return finish_l2(acc, q2v, r2b);
      }
    };
    a0 = fin(a0, q2a, r2[0]);
    b0 = fin(b0, q2b, r2[0]);
    a1 = fin(a1, q2a, r2[1]);
    b1 = fin(b1, q2b, r2[1]);
    a2 = fin(a2, q2a, r2[2]);
    b2 = fin(b2, q2b, r2[2]);
    a3 = fin(a3, q2a, r2[3]);
    b3 = fin(b3, q2b, r2[3]);
  }

  if (sel != nullptr) {
    if (sel->buf_d != nullptr) {
      defer_tile512(*sel, a0, b0, a1, b1, a2, b2, a3, b3, cols);
    } else {
      const __m512d rootsA = gather_roots(*sel, 0);
      const __m512d rootsB = gather_roots(*sel, 8);
      select_col512(*sel, 0, a0, b0, rootsA, rootsB, rows);
      if (cols > 1) select_col512(*sel, 1, a1, b1, rootsA, rootsB, rows);
      if (cols > 2) select_col512(*sel, 2, a2, b2, rootsA, rootsB, rows);
      if (cols > 3) select_col512(*sel, 3, a3, b3, rootsA, rootsB, rows);
    }
  }

  if (Cout != nullptr) {
    if (c_colmajor) {
      _mm512_storeu_pd(Cout + 0L * ldout, a0);
      _mm512_storeu_pd(Cout + 0L * ldout + 8, b0);
      _mm512_storeu_pd(Cout + 1L * ldout, a1);
      _mm512_storeu_pd(Cout + 1L * ldout + 8, b1);
      _mm512_storeu_pd(Cout + 2L * ldout, a2);
      _mm512_storeu_pd(Cout + 2L * ldout + 8, b2);
      _mm512_storeu_pd(Cout + 3L * ldout, a3);
      _mm512_storeu_pd(Cout + 3L * ldout + 8, b3);
    } else {
      const auto low = [](__m512d z) { return _mm512_castpd512_pd256(z); };
      const auto high = [](__m512d z) { return _mm512_extractf64x4_pd(z, 1); };
      for (int grp = 0; grp < 4; ++grp) {
        __m256d c0 = (grp < 2) ? (grp == 0 ? low(a0) : high(a0))
                               : (grp == 2 ? low(b0) : high(b0));
        __m256d c1 = (grp < 2) ? (grp == 0 ? low(a1) : high(a1))
                               : (grp == 2 ? low(b1) : high(b1));
        __m256d c2 = (grp < 2) ? (grp == 0 ? low(a2) : high(a2))
                               : (grp == 2 ? low(b2) : high(b2));
        __m256d c3 = (grp < 2) ? (grp == 0 ? low(a3) : high(a3))
                               : (grp == 2 ? low(b3) : high(b3));
        transpose4y(c0, c1, c2, c3);
        _mm256_storeu_pd(Cout + (4L * grp + 0) * ldout, c0);
        _mm256_storeu_pd(Cout + (4L * grp + 1) * ldout, c1);
        _mm256_storeu_pd(Cout + (4L * grp + 2) * ldout, c2);
        _mm256_storeu_pd(Cout + (4L * grp + 3) * ldout, c3);
      }
    }
  }
}

}  // namespace

MicroKernel micro_avx512(Norm norm) {
  switch (norm) {
    case Norm::kL2Sq:
      return {micro_avx512_impl<Norm::kL2Sq>, kMr512, kNr512};
    case Norm::kL1:
      return {micro_avx512_impl<Norm::kL1>, kMr512, kNr512};
    case Norm::kLInf:
      return {micro_avx512_impl<Norm::kLInf>, kMr512, kNr512};
    case Norm::kCosine:
      return {micro_avx512_impl<Norm::kCosine>, kMr512, kNr512};
    case Norm::kLp:
      return {nullptr, 0, 0};
  }
  return {nullptr, 0, 0};
}


// ---------------------------------------------------------------------------
// Single-precision kernel: 16×8 floats (one 16-wide zmm accumulator per
// column, eight independent FMA chains). Query-major tiles spill through a
// scalar loop (selection-buffer path only).
// ---------------------------------------------------------------------------

namespace {

inline constexpr int kMrF512 = 16;
inline constexpr int kNrF512 = 8;

template <Norm N>
GSKNN_ALWAYS_INLINE __m512 combine1f512(__m512 acc, __m512 qv, __m512 rb) {
  if constexpr (N == Norm::kL2Sq || N == Norm::kCosine) {
    return _mm512_fmadd_ps(qv, rb, acc);
  } else if constexpr (N == Norm::kL1) {
    return _mm512_add_ps(acc, _mm512_abs_ps(_mm512_sub_ps(qv, rb)));
  } else {  // kLInf
    return _mm512_max_ps(acc, _mm512_abs_ps(_mm512_sub_ps(qv, rb)));
  }
}

template <Norm N>
GSKNN_ALWAYS_INLINE __m512 finish1f512(__m512 acc, __m512 q2v, float r2j) {
  const __m512 r2b = _mm512_set1_ps(r2j);
  if constexpr (N == Norm::kL2Sq) {
    const __m512 two = _mm512_set1_ps(2.0f);
    return _mm512_max_ps(_mm512_setzero_ps(),
                         _mm512_fnmadd_ps(two, acc, _mm512_add_ps(q2v, r2b)));
  } else if constexpr (N == Norm::kCosine) {
    const __m512 one = _mm512_set1_ps(1.0f);
    const __m512 denom = _mm512_sqrt_ps(_mm512_mul_ps(q2v, r2b));
    const __m512 dist = _mm512_sub_ps(one, _mm512_div_ps(acc, denom));
    const __mmask16 degenerate =
        _mm512_cmp_ps_mask(denom, _mm512_setzero_ps(), _CMP_LE_OQ);
    return _mm512_mask_blend_ps(degenerate, dist, one);
  } else {
    return acc;
  }
}

GSKNN_ALWAYS_INLINE void select_colf512(const SelectCtxT<float>& sel, int j,
                                        __m512 col, __m512 roots, int rows) {
  unsigned mask = _mm512_cmp_ps_mask(col, roots, _CMP_LE_OQ);
  if (GSKNN_LIKELY(mask == 0)) return;
  alignas(64) float vals[kMrF512];
  _mm512_store_ps(vals, col);
  const int id = sel.cand_ids[j];
  while (mask != 0) {
    const int i = __builtin_ctz(mask);
    mask &= mask - 1;
    if (i < rows && sel_accepts(vals[i], id, sel.hd[i], sel.hi[i])) {
      sel_insert(sel, i, vals[i], id);
    }
  }
}

/// Deferred selection, float column: native 16-lane compress of distances
/// plus the row-index vector.
GSKNN_ALWAYS_INLINE void defer_colf512(const SelectCtxT<float>& sel, int j,
                                       __m512 col, __m512 roots) {
  const __mmask16 m = _mm512_cmp_ps_mask(col, roots, _CMP_LE_OQ);
  if (GSKNN_LIKELY(m == 0)) return;
  alignas(64) float sf[kMrF512];
  alignas(64) int sr[kMrF512];
  _mm512_mask_compressstoreu_ps(sf, m, col);
  const __m512i rows16 = _mm512_set_epi32(15, 14, 13, 12, 11, 10, 9, 8, 7, 6,
                                          5, 4, 3, 2, 1, 0);
  _mm512_mask_compressstoreu_epi32(sr, m, rows16);
  const int total = __builtin_popcount(static_cast<unsigned>(m));
  const int id = sel.cand_ids[j];
  for (int t = 0; t < total; ++t) {
    sel_defer(sel, sr[t], sf[t], id);
  }
}

GSKNN_ALWAYS_INLINE __m512 gather_roots_f(const SelectCtxT<float>& sel) {
  alignas(64) float r[kMrF512];
  for (int i = 0; i < kMrF512; ++i) r[i] = sel.hd[i][0];
  return _mm512_load_ps(r);
}

/// Deferred tile epilogue, out of line for the same code-size reason as the
/// f64 helper above.
GSKNN_NOINLINE void defer_tilef512(const SelectCtxT<float>& sel, __m512 a0,
                                   __m512 a1, __m512 a2, __m512 a3, __m512 a4,
                                   __m512 a5, __m512 a6, __m512 a7, int cols) {
  const __m512 roots = gather_roots_f(sel);
  defer_colf512(sel, 0, a0, roots);
  if (cols > 1) defer_colf512(sel, 1, a1, roots);
  if (cols > 2) defer_colf512(sel, 2, a2, roots);
  if (cols > 3) defer_colf512(sel, 3, a3, roots);
  if (cols > 4) defer_colf512(sel, 4, a4, roots);
  if (cols > 5) defer_colf512(sel, 5, a5, roots);
  if (cols > 6) defer_colf512(sel, 6, a6, roots);
  if (cols > 7) defer_colf512(sel, 7, a7, roots);
}

template <Norm N>
void micro_avx512_f32_impl(int dcur, const float* GSKNN_RESTRICT Qp,
                           const float* GSKNN_RESTRICT Rp,
                           const float* GSKNN_RESTRICT Cin, int ldin,
                           float* GSKNN_RESTRICT Cout, int ldout,
                           bool c_colmajor, const float* GSKNN_RESTRICT q2,
                           const float* GSKNN_RESTRICT r2, bool finish,
                           int rows, int cols, const SelectCtxT<float>* sel,
                           double lp) {
  (void)lp;
  __m512 a0, a1, a2, a3, a4, a5, a6, a7;  // column j = 16 tile rows

  if (Cin != nullptr) {
    if (c_colmajor) {
      a0 = _mm512_loadu_ps(Cin + 0L * ldin);
      a1 = _mm512_loadu_ps(Cin + 1L * ldin);
      a2 = _mm512_loadu_ps(Cin + 2L * ldin);
      a3 = _mm512_loadu_ps(Cin + 3L * ldin);
      a4 = _mm512_loadu_ps(Cin + 4L * ldin);
      a5 = _mm512_loadu_ps(Cin + 5L * ldin);
      a6 = _mm512_loadu_ps(Cin + 6L * ldin);
      a7 = _mm512_loadu_ps(Cin + 7L * ldin);
    } else {
      alignas(64) float t[kNrF512][kMrF512];
      for (int i = 0; i < kMrF512; ++i) {
        for (int j = 0; j < kNrF512; ++j) {
          t[j][i] = Cin[static_cast<long>(i) * ldin + j];
        }
      }
      a0 = _mm512_load_ps(t[0]);
      a1 = _mm512_load_ps(t[1]);
      a2 = _mm512_load_ps(t[2]);
      a3 = _mm512_load_ps(t[3]);
      a4 = _mm512_load_ps(t[4]);
      a5 = _mm512_load_ps(t[5]);
      a6 = _mm512_load_ps(t[6]);
      a7 = _mm512_load_ps(t[7]);
    }
  } else {
    a0 = a1 = a2 = a3 = _mm512_setzero_ps();
    a4 = a5 = a6 = a7 = _mm512_setzero_ps();
  }

  // Q-panel look-ahead only — see the f64 kernel's note.
  const float* ap = Qp;
  const float* bp = Rp;
  for (int p = 0; p < dcur; ++p) {
    const __m512 qv = _mm512_load_ps(ap);
    GSKNN_PREFETCH_R(ap + kMicroQPrefetchIters * kMrF512);
    a0 = combine1f512<N>(a0, qv, _mm512_set1_ps(bp[0]));
    a1 = combine1f512<N>(a1, qv, _mm512_set1_ps(bp[1]));
    a2 = combine1f512<N>(a2, qv, _mm512_set1_ps(bp[2]));
    a3 = combine1f512<N>(a3, qv, _mm512_set1_ps(bp[3]));
    a4 = combine1f512<N>(a4, qv, _mm512_set1_ps(bp[4]));
    a5 = combine1f512<N>(a5, qv, _mm512_set1_ps(bp[5]));
    a6 = combine1f512<N>(a6, qv, _mm512_set1_ps(bp[6]));
    a7 = combine1f512<N>(a7, qv, _mm512_set1_ps(bp[7]));
    ap += kMrF512;
    bp += kNrF512;
  }

  if (finish && (N == Norm::kL2Sq || N == Norm::kCosine)) {
    const __m512 q2v = _mm512_load_ps(q2);
    a0 = finish1f512<N>(a0, q2v, r2[0]);
    a1 = finish1f512<N>(a1, q2v, r2[1]);
    a2 = finish1f512<N>(a2, q2v, r2[2]);
    a3 = finish1f512<N>(a3, q2v, r2[3]);
    a4 = finish1f512<N>(a4, q2v, r2[4]);
    a5 = finish1f512<N>(a5, q2v, r2[5]);
    a6 = finish1f512<N>(a6, q2v, r2[6]);
    a7 = finish1f512<N>(a7, q2v, r2[7]);
  }

  if (sel != nullptr) {
    if (sel->buf_d != nullptr) {
      defer_tilef512(*sel, a0, a1, a2, a3, a4, a5, a6, a7, cols);
    } else {
      const __m512 roots = gather_roots_f(*sel);
      select_colf512(*sel, 0, a0, roots, rows);
      if (cols > 1) select_colf512(*sel, 1, a1, roots, rows);
      if (cols > 2) select_colf512(*sel, 2, a2, roots, rows);
      if (cols > 3) select_colf512(*sel, 3, a3, roots, rows);
      if (cols > 4) select_colf512(*sel, 4, a4, roots, rows);
      if (cols > 5) select_colf512(*sel, 5, a5, roots, rows);
      if (cols > 6) select_colf512(*sel, 6, a6, roots, rows);
      if (cols > 7) select_colf512(*sel, 7, a7, roots, rows);
    }
  }

  if (Cout != nullptr) {
    if (c_colmajor) {
      _mm512_storeu_ps(Cout + 0L * ldout, a0);
      _mm512_storeu_ps(Cout + 1L * ldout, a1);
      _mm512_storeu_ps(Cout + 2L * ldout, a2);
      _mm512_storeu_ps(Cout + 3L * ldout, a3);
      _mm512_storeu_ps(Cout + 4L * ldout, a4);
      _mm512_storeu_ps(Cout + 5L * ldout, a5);
      _mm512_storeu_ps(Cout + 6L * ldout, a6);
      _mm512_storeu_ps(Cout + 7L * ldout, a7);
    } else {
      alignas(64) float t[kNrF512][kMrF512];
      _mm512_store_ps(t[0], a0);
      _mm512_store_ps(t[1], a1);
      _mm512_store_ps(t[2], a2);
      _mm512_store_ps(t[3], a3);
      _mm512_store_ps(t[4], a4);
      _mm512_store_ps(t[5], a5);
      _mm512_store_ps(t[6], a6);
      _mm512_store_ps(t[7], a7);
      for (int i = 0; i < kMrF512; ++i) {
        for (int j = 0; j < kNrF512; ++j) {
          Cout[static_cast<long>(i) * ldout + j] = t[j][i];
        }
      }
    }
  }
}

}  // namespace

MicroKernelT<float> micro_avx512_f32(Norm norm) {
  switch (norm) {
    case Norm::kL2Sq:
      return {micro_avx512_f32_impl<Norm::kL2Sq>, kMrF512, kNrF512};
    case Norm::kL1:
      return {micro_avx512_f32_impl<Norm::kL1>, kMrF512, kNrF512};
    case Norm::kLInf:
      return {micro_avx512_f32_impl<Norm::kLInf>, kMrF512, kNrF512};
    case Norm::kCosine:
      return {micro_avx512_f32_impl<Norm::kCosine>, kMrF512, kNrF512};
    case Norm::kLp:
      return {nullptr, 0, 0};
  }
  return {nullptr, 0, 0};
}

}  // namespace gsknn::core

#endif  // GSKNN_BUILD_AVX512
