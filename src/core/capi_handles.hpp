// Internal: C-handle struct layouts shared by the capi translation units
// (src/core/capi.cpp, src/serving/capi.cpp). The public header only forward
// declares these; every TU that unwraps a handle must see one identical
// definition, which is this file.
#pragma once

#include "gsknn/core/knn.hpp"

struct gsknn_table {
  gsknn::PointTable table;
};

struct gsknn_result {
  gsknn::NeighborTable table;
};
