// Reference-side data parallelism (§2.5, footnote 5).
//
// The paper's preferred scheme parallelizes the 4th (query) loop because
// reference-side parallelism "may lead to a potential race condition when
// updating the same neighbor list"; its footnote resolves the race on Xeon
// Phi "by creating private-per-thread heaps followed by a parallel merge".
// This is that scheme: each thread runs the sequential kernel over a
// contiguous slice of the references into a private table, then the tables
// are merged (query-parallel, race-free) into the caller's result.
//
// Governance: the private tables are allocated *before* the parallel region
// (an allocation failure maps to kResourceExhausted with the caller's result
// untouched), workers inherit the call's deadline/cancel token, and when any
// worker stops early the merge is skipped entirely — a partial merge would
// blend complete and incomplete slices into rows no flag could describe.
#include <new>
#include <vector>

#include "gsknn/common/metrics.hpp"
#include "gsknn/common/pmu.hpp"
#include "gsknn/common/telemetry.hpp"
#include "gsknn/common/threads.hpp"
#include "gsknn/common/timer.hpp"
#include "gsknn/common/trace.hpp"
#include "gsknn/core/entry_metrics.hpp"
#include "gsknn/core/knn.hpp"

namespace gsknn {

namespace {

Status parallel_refs_impl(const PointTableT<double>& X,
                          std::span<const int> qidx, std::span<const int> ridx,
                          NeighborTable& result, const KnnConfig& cfg,
                          std::span<const int> result_rows) {
  const int m = static_cast<int>(qidx.size());
  const int n = static_cast<int>(ridx.size());
  // Validate before the OpenMP region: a StatusError thrown by a worker
  // inside #pragma omp parallel could not propagate and would terminate.
  check_knn_args(X, qidx, ridx, result, cfg, result_rows);
  if (m == 0 || n == 0) return Status::kOk;
  const int threads = resolve_threads(cfg.threads);
  const int k = result.k();

  // Not enough reference work to split: run the plain kernel.
  if (threads <= 1 || n < 2 * threads) {
    return knn_kernel_status(X, qidx, ridx, result, cfg, result_rows);
  }

  // Private per-thread tables over identity rows. Dedup (if requested)
  // must only act within a slice here — across slices the same id cannot
  // appear twice unless it appeared twice in ridx, which the merge below
  // handles through the caller's table. Allocated here, not in the region:
  // a std::bad_alloc past this point could not escape the parallel region.
  KnnConfig worker_cfg = cfg;
  worker_cfg.threads = 1;
  // Arguments were validated above; don't repeat the opt-in O((m+n)·d)
  // finite scan once per worker.
  worker_cfg.validate = false;
  std::vector<NeighborTable> priv;
  const int chunk = (n + threads - 1) / threads;
  try {
    priv.resize(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      if (t * chunk >= n) break;  // empty slice: table stays 0-row
      priv[static_cast<std::size_t>(t)].resize(m, k, result.arity());
      if (cfg.dedup) priv[static_cast<std::size_t>(t)].enable_dedup_index();
    }
  } catch (const std::bad_alloc&) {
    return Status::kResourceExhausted;
  }

  // Telemetry: concurrent workers must not share one sink, so each records
  // into a private profile; the privates are merged into cfg.profile below
  // and the end-to-end wall time replaces the summed per-worker walls. The
  // trace sink (if any) IS shared — my_cfg copies it from cfg — because its
  // per-thread rings make concurrent recording safe, giving one unified
  // timeline across the worker kernels and the merge.
  const bool prof = (cfg.profile != nullptr);
  const bool pmu_on = prof && telemetry::pmu_available();
  telemetry::TraceSink* const trace = cfg.trace;
  WallTimer wall_timer;
  std::vector<telemetry::KernelProfile> wprof(
      prof ? static_cast<std::size_t>(threads) : 0);
  std::vector<Status> wstat(static_cast<std::size_t>(threads), Status::kOk);

#if defined(GSKNN_HAVE_OPENMP)
#pragma omp parallel num_threads(threads)
#endif
  {
    const int t = thread_id();
    const int lo = t * chunk;
    const int hi = (lo + chunk < n) ? lo + chunk : n;
    if (lo < hi) {
      NeighborTable& mine = priv[static_cast<std::size_t>(t)];
      KnnConfig my_cfg = worker_cfg;
      my_cfg.profile = prof ? &wprof[static_cast<std::size_t>(t)] : nullptr;
      // knn_kernel_status never throws: pressure outcomes (cancellation,
      // deadline, exhaustion — the token/deadline ride in via worker_cfg)
      // come back as a Status this region can carry out safely.
      wstat[static_cast<std::size_t>(t)] = knn_kernel_status(
          X, qidx,
          ridx.subspan(static_cast<std::size_t>(lo),
                       static_cast<std::size_t>(hi - lo)),
          mine, my_cfg);
    }
  }

  for (const Status s : wstat) {
    if (s != Status::kOk) return s;  // merge skipped; result untouched
  }

  WallTimer merge_timer;
  if (prof) merge_timer.start();
  telemetry::PmuCounts merge_pmu;
  // Parallel merge: each query row is owned by one iteration, so inserting
  // every private candidate into the caller's row is race-free. Written as
  // parallel + for-nowait so each worker brackets its own chunk with PMU
  // reads and a trace span.
#if defined(GSKNN_HAVE_OPENMP)
#pragma omp parallel num_threads(threads)
#endif
  {
    telemetry::PmuCounts w0;
    std::uint64_t wt0 = 0;
    if (pmu_on) telemetry::PmuGroup::this_thread().read(w0);
    if (trace != nullptr) wt0 = telemetry::trace_now();
#if defined(GSKNN_HAVE_OPENMP)
#pragma omp for schedule(static) nowait
#endif
    for (int i = 0; i < m; ++i) {
      const int row =
          result_rows.empty() ? i : result_rows[static_cast<std::size_t>(i)];
      for (const auto& table : priv) {
        if (table.rows() == 0) continue;
        const double* d = table.row_dists(i);
        const int* ids = table.row_ids(i);
        for (int s = 0; s < table.row_stride(); ++s) {
          if (ids[s] == heap::kNoId) continue;
          if (cfg.dedup) {
            result.try_insert_unique(row, d[s], ids[s]);
          } else {
            result.try_insert(row, d[s], ids[s]);
          }
        }
      }
      // Every worker finished, so this row saw every candidate — re-arm any
      // completion flag left by an earlier interrupted call on this table.
      result.mark_row_complete(row);
    }
    if (trace != nullptr) {
      trace->record(telemetry::Phase::kMerge, wt0, telemetry::trace_now());
    }
    if (pmu_on) {
      telemetry::PmuCounts w1;
      if (telemetry::PmuGroup::this_thread().read(w1)) {
        const telemetry::PmuCounts delta = w1.delta_since(w0);
#if defined(GSKNN_HAVE_OPENMP)
#pragma omp critical(gsknn_merge_pmu)
#endif
        merge_pmu.accumulate(delta);
      }
    }
  }

  if (prof) {
    const double merge_secs = merge_timer.seconds();
    telemetry::KernelProfile combined;
    for (const auto& wp : wprof) combined.merge(wp);
    // Workers ran concurrently: the summed worker walls overstate elapsed
    // time, so report the region's actual wall and keep the summed phase
    // attribution (phase_seconds becomes total busy time across workers —
    // per-phase critical paths are not defined for task parallelism).
    combined.wall_seconds = wall_timer.seconds();
    combined.phase_seconds[static_cast<int>(telemetry::Phase::kMerge)] +=
        merge_secs;
    combined.phase_thread_seconds[static_cast<int>(telemetry::Phase::kMerge)] +=
        merge_secs;
    if (pmu_on) {
      for (int e = 0; e < telemetry::kPmuEventCount; ++e) {
        combined.phase_pmu[static_cast<int>(telemetry::Phase::kMerge)][e] +=
            merge_pmu.v[e];
      }
      combined.pmu_enabled = true;
    }
    combined.algorithm = "gsknn_parallel_refs";
    combined.m = m;
    combined.n = n;
    combined.threads = threads;
    // The workers are parts of ONE logical kernel call, not separate ones.
    combined.invocations = 1;
    cfg.profile->merge(combined);
  }
  return Status::kOk;
}

}  // namespace

void knn_kernel_parallel_refs(const PointTableT<double>& X,
                              std::span<const int> qidx,
                              std::span<const int> ridx,
                              NeighborTable& result, const KnnConfig& cfg,
                              std::span<const int> result_rows) {
  const Status s = core::record_entry_status(
      metrics::EntryPoint::kParallelRefs, static_cast<int>(qidx.size()),
      static_cast<int>(ridx.size()), X.dim(), result.k(),
      [&] { return parallel_refs_impl(X, qidx, ridx, result, cfg,
                                      result_rows); });
  if (s != Status::kOk) {
    throw StatusError(s, std::string("gsknn: parallel_refs stopped: ") +
                             status_name(s));
  }
}

Status knn_kernel_parallel_refs_status(const PointTableT<double>& X,
                                       std::span<const int> qidx,
                                       std::span<const int> ridx,
                                       NeighborTable& result,
                                       const KnnConfig& cfg,
                                       std::span<const int> result_rows) {
  try {
    return core::record_entry_status(
        metrics::EntryPoint::kParallelRefs, static_cast<int>(qidx.size()),
        static_cast<int>(ridx.size()), X.dim(), result.k(),
        [&] { return parallel_refs_impl(X, qidx, ridx, result, cfg,
                                        result_rows); });
  } catch (const StatusError& e) {
    return e.status();
  } catch (const std::bad_alloc&) {
    return Status::kResourceExhausted;
  }
}

}  // namespace gsknn
