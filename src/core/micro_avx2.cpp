// AVX2+FMA fused micro-kernels (ℓ2, ℓ1, ℓ∞).
//
// The rank-dc update mirrors the dgemm micro-kernel in src/blas (same
// column-major accumulators, same broadcast-FMA schema) so GSKNN-vs-GEMM
// comparisons measure fusion, not kernel quality. On top of it:
//   * the distance finish runs in registers (q2 row-vector + broadcast r2,
//     one FNMADD per accumulator);
//   * the Var#1 selection prefilter is the paper's vectorized root compare:
//     per column, VCMPPD against a gathered root vector; tiles whose masks
//     are empty are discarded without a single store — the best case in
//     which GSKNN never materializes C;
//   * loads/stores of the query-major Cc tile go through 4×4 register
//     transposes.
//
// All eight accumulators are *named* locals, never placed in an array or
// pointed at: address-taken __m256d arrays force GCC to keep a stack copy
// live and re-store every accumulator on each depth step, which costs ~20%
// of peak. (Found the hard way; see the repo history.)
#include "micro.hpp"

#if defined(GSKNN_BUILD_AVX2)

#include <immintrin.h>

namespace gsknn::core {

namespace {

/// In-register 4×4 double transpose: four row vectors in, their columns out.
GSKNN_ALWAYS_INLINE void transpose4(__m256d& a, __m256d& b, __m256d& c,
                                    __m256d& d) {
  const __m256d t0 = _mm256_unpacklo_pd(a, b);
  const __m256d t1 = _mm256_unpackhi_pd(a, b);
  const __m256d t2 = _mm256_unpacklo_pd(c, d);
  const __m256d t3 = _mm256_unpackhi_pd(c, d);
  a = _mm256_permute2f128_pd(t0, t2, 0x20);
  b = _mm256_permute2f128_pd(t1, t3, 0x20);
  c = _mm256_permute2f128_pd(t0, t2, 0x31);
  d = _mm256_permute2f128_pd(t1, t3, 0x31);
}

GSKNN_ALWAYS_INLINE __m256d abs_pd(__m256d v) {
  const __m256d sign = _mm256_set1_pd(-0.0);
  return _mm256_andnot_pd(sign, v);
}

// ---------------------------------------------------------------------------
// Compress-store emulation. AVX2 has no vcompresspd, so passing lanes are
// compacted with a mask-indexed permutation LUT (_mm256_permutevar8x32 is
// the only cross-lane variable shuffle AVX2 offers) and the matching tile-
// row numbers come from a parallel byte table.
// ---------------------------------------------------------------------------

/// 4-lane double compress: perm[m] holds the epi32 index pairs that move
/// the set lanes of mask m to the front; rows[m] the corresponding lanes.
struct Comp4Tables {
  alignas(32) int perm[16][8];
  unsigned char rows[16][4];
};

constexpr Comp4Tables make_comp4() {
  Comp4Tables t{};
  for (int m = 0; m < 16; ++m) {
    int c = 0;
    for (int l = 0; l < 4; ++l) {
      if ((m >> l) & 1) {
        t.perm[m][2 * c] = 2 * l;
        t.perm[m][2 * c + 1] = 2 * l + 1;
        t.rows[m][c] = static_cast<unsigned char>(l);
        ++c;
      }
    }
    for (; c < 4; ++c) {
      t.perm[m][2 * c] = 0;
      t.perm[m][2 * c + 1] = 1;
      t.rows[m][c] = 0;
    }
  }
  return t;
}

inline constexpr Comp4Tables kComp4 = make_comp4();

/// 8-lane float compress LUT (256 masks × 8 lane indices).
struct Comp8Tables {
  alignas(32) int perm[256][8];
  unsigned char rows[256][8];
};

constexpr Comp8Tables make_comp8() {
  Comp8Tables t{};
  for (int m = 0; m < 256; ++m) {
    int c = 0;
    for (int l = 0; l < 8; ++l) {
      if ((m >> l) & 1) {
        t.perm[m][c] = l;
        t.rows[m][c] = static_cast<unsigned char>(l);
        ++c;
      }
    }
    for (; c < 8; ++c) {
      t.perm[m][c] = 0;
      t.rows[m][c] = 0;
    }
  }
  return t;
}

inline constexpr Comp8Tables kComp8 = make_comp8();

/// One rank-1 step of the norm-specific combine for a single column.
template <Norm N>
GSKNN_ALWAYS_INLINE void combine1(__m256d& accLo, __m256d& accHi, __m256d qlo,
                                  __m256d qhi, __m256d rb) {
  if constexpr (N == Norm::kL2Sq || N == Norm::kCosine) {
    accLo = _mm256_fmadd_pd(qlo, rb, accLo);
    accHi = _mm256_fmadd_pd(qhi, rb, accHi);
  } else if constexpr (N == Norm::kL1) {
    accLo = _mm256_add_pd(accLo, abs_pd(_mm256_sub_pd(qlo, rb)));
    accHi = _mm256_add_pd(accHi, abs_pd(_mm256_sub_pd(qhi, rb)));
  } else {  // kLInf
    accLo = _mm256_max_pd(accLo, abs_pd(_mm256_sub_pd(qlo, rb)));
    accHi = _mm256_max_pd(accHi, abs_pd(_mm256_sub_pd(qhi, rb)));
  }
}

/// Deferred selection for one 4-row half: compress-store the passing lanes
/// and append (distance, id) to the per-row candidate buffers. No re-check
/// against the live root here — the flush re-checks in arrival order, so
/// results match immediate insertion exactly.
GSKNN_ALWAYS_INLINE void defer_half_pd(const SelectCtx& sel, unsigned m,
                                       __m256d col, int rowbase, int id) {
  alignas(32) double sd[4];
  const __m256i perm =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(kComp4.perm[m]));
  _mm256_store_pd(sd, _mm256_castsi256_pd(_mm256_permutevar8x32_epi32(
                          _mm256_castpd_si256(col), perm)));
  const int pc = __builtin_popcount(m);
  for (int t = 0; t < pc; ++t) {
    sel_defer(sel, rowbase + kComp4.rows[m][t], sd[t], id);
  }
}

/// Deferred selection for one finished column. Padded tile rows carry -inf
/// sentinel roots, so they can never pass the prefilter. The prefilter is
/// `<=` (ordered, so NaN distances never pass): a candidate tying the root
/// must reach the flush re-check, which applies the full lexicographic
/// (distance, id) rule — `<` would drop ties the contract keeps.
GSKNN_ALWAYS_INLINE void defer_col(const SelectCtx& sel, int j, __m256d colLo,
                                   __m256d colHi, __m256d rootsLo,
                                   __m256d rootsHi) {
  const unsigned mlo = static_cast<unsigned>(
      _mm256_movemask_pd(_mm256_cmp_pd(colLo, rootsLo, _CMP_LE_OQ)));
  const unsigned mhi = static_cast<unsigned>(
      _mm256_movemask_pd(_mm256_cmp_pd(colHi, rootsHi, _CMP_LE_OQ)));
  if (GSKNN_LIKELY((mlo | mhi) == 0)) return;
  const int id = sel.cand_ids[j];
  if (mlo != 0) defer_half_pd(sel, mlo, colLo, 0, id);
  if (mhi != 0) defer_half_pd(sel, mhi, colHi, 4, id);
}

/// Deferred-selection tile epilogue. Kept out of line so the common
/// immediate-select path keeps the seed kernel's code size; inlining the
/// compress machinery into every norm instantiation measurably slowed all k
/// (icache; see EXPERIMENTS.md "Hot-path tuning"). Roots are gathered here,
/// not passed, to keep the eight accumulators within the vector argument
/// registers.
GSKNN_NOINLINE void defer_tile_avx2(const SelectCtx& sel, __m256d lo0,
                                    __m256d hi0, __m256d lo1, __m256d hi1,
                                    __m256d lo2, __m256d hi2, __m256d lo3,
                                    __m256d hi3, int cols) {
  const __m256d rootsLo =
      _mm256_set_pd(sel.hd[3][0], sel.hd[2][0], sel.hd[1][0], sel.hd[0][0]);
  const __m256d rootsHi =
      _mm256_set_pd(sel.hd[7][0], sel.hd[6][0], sel.hd[5][0], sel.hd[4][0]);
  defer_col(sel, 0, lo0, hi0, rootsLo, rootsHi);
  if (cols > 1) defer_col(sel, 1, lo1, hi1, rootsLo, rootsHi);
  if (cols > 2) defer_col(sel, 2, lo2, hi2, rootsLo, rootsHi);
  if (cols > 3) defer_col(sel, 3, lo3, hi3, rootsLo, rootsHi);
}

/// Selection for one finished column j (paper's vectorized root compare +
/// scalar re-checked inserts).
GSKNN_ALWAYS_INLINE void select_col(const SelectCtx& sel, int j, __m256d colLo,
                                    __m256d colHi, __m256d rootsLo,
                                    __m256d rootsHi, int rows) {
  const int mlo =
      _mm256_movemask_pd(_mm256_cmp_pd(colLo, rootsLo, _CMP_LE_OQ));
  const int mhi =
      _mm256_movemask_pd(_mm256_cmp_pd(colHi, rootsHi, _CMP_LE_OQ));
  unsigned mask =
      static_cast<unsigned>(mlo) | (static_cast<unsigned>(mhi) << 4);
  if (GSKNN_LIKELY(mask == 0)) return;
  alignas(32) double col[kMr];
  _mm256_store_pd(col, colLo);
  _mm256_store_pd(col + 4, colHi);
  const int id = sel.cand_ids[j];
  while (mask != 0) {
    const int i = __builtin_ctz(mask);
    mask &= mask - 1;
    // Re-check against the live root: earlier inserts (including in this
    // tile) may have shrunk it since the vector compare, and the `<=`
    // prefilter admits root ties the lexicographic rule must arbitrate.
    if (i < rows && sel_accepts(col[i], id, sel.hd[i], sel.hi[i])) {
      sel_insert(sel, i, col[i], id);
    }
  }
}

template <Norm N>
void micro_avx2_impl(int dcur, const double* GSKNN_RESTRICT Qp,
                     const double* GSKNN_RESTRICT Rp,
                     const double* GSKNN_RESTRICT Cin, int ldin,
                     double* GSKNN_RESTRICT Cout, int ldout, bool c_colmajor,
                     const double* GSKNN_RESTRICT q2,
                     const double* GSKNN_RESTRICT r2, bool finish, int rows,
                     int cols, const SelectCtx* sel, double lp) {
  (void)lp;
  __m256d lo0, lo1, lo2, lo3;  // column j, tile rows 0..3
  __m256d hi0, hi1, hi2, hi3;  // column j, tile rows 4..7

  if (Cin != nullptr) {
    if (c_colmajor) {
      // Column-major tile: each column is two contiguous 4-vectors —
      // matches the accumulator layout directly.
      lo0 = _mm256_loadu_pd(Cin + 0L * ldin);
      hi0 = _mm256_loadu_pd(Cin + 0L * ldin + 4);
      lo1 = _mm256_loadu_pd(Cin + 1L * ldin);
      hi1 = _mm256_loadu_pd(Cin + 1L * ldin + 4);
      lo2 = _mm256_loadu_pd(Cin + 2L * ldin);
      hi2 = _mm256_loadu_pd(Cin + 2L * ldin + 4);
      lo3 = _mm256_loadu_pd(Cin + 3L * ldin);
      hi3 = _mm256_loadu_pd(Cin + 3L * ldin + 4);
    } else {
      // Query-major rows are contiguous 4-vectors over j; transpose each
      // 4-row half into the column-major accumulator layout.
      lo0 = _mm256_loadu_pd(Cin + 0L * ldin);
      lo1 = _mm256_loadu_pd(Cin + 1L * ldin);
      lo2 = _mm256_loadu_pd(Cin + 2L * ldin);
      lo3 = _mm256_loadu_pd(Cin + 3L * ldin);
      transpose4(lo0, lo1, lo2, lo3);
      hi0 = _mm256_loadu_pd(Cin + 4L * ldin);
      hi1 = _mm256_loadu_pd(Cin + 5L * ldin);
      hi2 = _mm256_loadu_pd(Cin + 6L * ldin);
      hi3 = _mm256_loadu_pd(Cin + 7L * ldin);
      transpose4(hi0, hi1, hi2, hi3);
    }
  } else {
    lo0 = lo1 = lo2 = lo3 = _mm256_setzero_pd();
    hi0 = hi1 = hi2 = hi3 = _mm256_setzero_pd();
  }

  // Only the Q panel gets a software prefetch: it is the loop's widest
  // stream (kMr doubles per iteration) and the fixed look-ahead keeps its
  // next lines in flight. Prefetching the narrower R panel or the heap roots
  // as well was measured slower (load-port contention in a loop that
  // saturates them; the roots stay L2-resident across jr sweeps anyway) —
  // see EXPERIMENTS.md "Hot-path tuning".
  const double* a = Qp;
  const double* b = Rp;
  for (int p = 0; p < dcur; ++p) {
    const __m256d qlo = _mm256_load_pd(a);
    const __m256d qhi = _mm256_load_pd(a + 4);
    GSKNN_PREFETCH_R(a + kMicroQPrefetchIters * kMr);
    __m256d rb = _mm256_broadcast_sd(b + 0);
    combine1<N>(lo0, hi0, qlo, qhi, rb);
    rb = _mm256_broadcast_sd(b + 1);
    combine1<N>(lo1, hi1, qlo, qhi, rb);
    rb = _mm256_broadcast_sd(b + 2);
    combine1<N>(lo2, hi2, qlo, qhi, rb);
    rb = _mm256_broadcast_sd(b + 3);
    combine1<N>(lo3, hi3, qlo, qhi, rb);
    a += kMr;
    b += kNr;
  }

  if (finish && N == Norm::kL2Sq) {
    // dist = max(0, q2 + r2 − 2·acc); padded lanes get finite garbage.
    const __m256d q2lo = _mm256_load_pd(q2);
    const __m256d q2hi = _mm256_load_pd(q2 + 4);
    const __m256d two = _mm256_set1_pd(2.0);
    const __m256d zero = _mm256_setzero_pd();
    __m256d r2b = _mm256_broadcast_sd(r2 + 0);
    lo0 = _mm256_max_pd(zero,
                        _mm256_fnmadd_pd(two, lo0, _mm256_add_pd(q2lo, r2b)));
    hi0 = _mm256_max_pd(zero,
                        _mm256_fnmadd_pd(two, hi0, _mm256_add_pd(q2hi, r2b)));
    r2b = _mm256_broadcast_sd(r2 + 1);
    lo1 = _mm256_max_pd(zero,
                        _mm256_fnmadd_pd(two, lo1, _mm256_add_pd(q2lo, r2b)));
    hi1 = _mm256_max_pd(zero,
                        _mm256_fnmadd_pd(two, hi1, _mm256_add_pd(q2hi, r2b)));
    r2b = _mm256_broadcast_sd(r2 + 2);
    lo2 = _mm256_max_pd(zero,
                        _mm256_fnmadd_pd(two, lo2, _mm256_add_pd(q2lo, r2b)));
    hi2 = _mm256_max_pd(zero,
                        _mm256_fnmadd_pd(two, hi2, _mm256_add_pd(q2hi, r2b)));
    r2b = _mm256_broadcast_sd(r2 + 3);
    lo3 = _mm256_max_pd(zero,
                        _mm256_fnmadd_pd(two, lo3, _mm256_add_pd(q2lo, r2b)));
    hi3 = _mm256_max_pd(zero,
                        _mm256_fnmadd_pd(two, hi3, _mm256_add_pd(q2hi, r2b)));
  }

  if (finish && N == Norm::kCosine) {
    // 1 − qᵀr/√(‖q‖²·‖r‖²). Zero-norm lanes (including zero-padded edge
    // lanes) would divide by zero; blending with the denominator==0 mask
    // pins them at distance 1.
    const __m256d one = _mm256_set1_pd(1.0);
    const __m256d zero = _mm256_setzero_pd();
    const __m256d q2lo = _mm256_load_pd(q2);
    const __m256d q2hi = _mm256_load_pd(q2 + 4);
    const auto fin = [&](__m256d acc, __m256d q2v, __m256d r2b) {
      const __m256d denom = _mm256_sqrt_pd(_mm256_mul_pd(q2v, r2b));
      const __m256d dist = _mm256_sub_pd(one, _mm256_div_pd(acc, denom));
      const __m256d degenerate = _mm256_cmp_pd(denom, zero, _CMP_LE_OQ);
      return _mm256_blendv_pd(dist, one, degenerate);
    };
    __m256d r2b = _mm256_broadcast_sd(r2 + 0);
    lo0 = fin(lo0, q2lo, r2b);
    hi0 = fin(hi0, q2hi, r2b);
    r2b = _mm256_broadcast_sd(r2 + 1);
    lo1 = fin(lo1, q2lo, r2b);
    hi1 = fin(hi1, q2hi, r2b);
    r2b = _mm256_broadcast_sd(r2 + 2);
    lo2 = fin(lo2, q2lo, r2b);
    hi2 = fin(hi2, q2hi, r2b);
    r2b = _mm256_broadcast_sd(r2 + 3);
    lo3 = fin(lo3, q2lo, r2b);
    hi3 = fin(hi3, q2hi, r2b);
  }

  if (sel != nullptr) {
    if (sel->buf_d != nullptr) {
      defer_tile_avx2(*sel, lo0, hi0, lo1, hi1, lo2, hi2, lo3, hi3, cols);
    } else {
      // Roots for invalid rows are -inf sentinels installed by the driver,
      // so padded lanes never pass the compare. The roots vector is
      // gathered once per tile; staleness only admits candidates the
      // re-check rejects.
      const __m256d rootsLo = _mm256_set_pd(sel->hd[3][0], sel->hd[2][0],
                                            sel->hd[1][0], sel->hd[0][0]);
      const __m256d rootsHi = _mm256_set_pd(sel->hd[7][0], sel->hd[6][0],
                                            sel->hd[5][0], sel->hd[4][0]);
      select_col(*sel, 0, lo0, hi0, rootsLo, rootsHi, rows);
      if (cols > 1) select_col(*sel, 1, lo1, hi1, rootsLo, rootsHi, rows);
      if (cols > 2) select_col(*sel, 2, lo2, hi2, rootsLo, rootsHi, rows);
      if (cols > 3) select_col(*sel, 3, lo3, hi3, rootsLo, rootsHi, rows);
    }
  }

  if (Cout != nullptr) {
    if (c_colmajor) {
      _mm256_storeu_pd(Cout + 0L * ldout, lo0);
      _mm256_storeu_pd(Cout + 0L * ldout + 4, hi0);
      _mm256_storeu_pd(Cout + 1L * ldout, lo1);
      _mm256_storeu_pd(Cout + 1L * ldout + 4, hi1);
      _mm256_storeu_pd(Cout + 2L * ldout, lo2);
      _mm256_storeu_pd(Cout + 2L * ldout + 4, hi2);
      _mm256_storeu_pd(Cout + 3L * ldout, lo3);
      _mm256_storeu_pd(Cout + 3L * ldout + 4, hi3);
    } else {
      transpose4(lo0, lo1, lo2, lo3);
      _mm256_storeu_pd(Cout + 0L * ldout, lo0);
      _mm256_storeu_pd(Cout + 1L * ldout, lo1);
      _mm256_storeu_pd(Cout + 2L * ldout, lo2);
      _mm256_storeu_pd(Cout + 3L * ldout, lo3);
      transpose4(hi0, hi1, hi2, hi3);
      _mm256_storeu_pd(Cout + 4L * ldout, hi0);
      _mm256_storeu_pd(Cout + 5L * ldout, hi1);
      _mm256_storeu_pd(Cout + 6L * ldout, hi2);
      _mm256_storeu_pd(Cout + 7L * ldout, hi3);
    }
  }
}

}  // namespace

MicroFn micro_avx2(Norm norm) {
  switch (norm) {
    case Norm::kL2Sq:
      return micro_avx2_impl<Norm::kL2Sq>;
    case Norm::kL1:
      return micro_avx2_impl<Norm::kL1>;
    case Norm::kLInf:
      return micro_avx2_impl<Norm::kLInf>;
    case Norm::kCosine:
      return micro_avx2_impl<Norm::kCosine>;
    case Norm::kLp:
      return micro_scalar(Norm::kLp);
  }
  return micro_avx2_impl<Norm::kL2Sq>;
}


// ---------------------------------------------------------------------------
// Single-precision kernel: 8×8 floats (one 8-wide ymm accumulator per
// column, eight independent FMA chains). Query-major Cc tiles go through a
// scalar spill — the float path only uses them for the Var#2/3/5/6
// selection buffers, where the store is a vanishing fraction of the work.
// ---------------------------------------------------------------------------

namespace {

inline constexpr int kMrF = 8;
inline constexpr int kNrF = 8;

GSKNN_ALWAYS_INLINE __m256 abs_ps(__m256 v) {
  return _mm256_andnot_ps(_mm256_set1_ps(-0.0f), v);
}

template <Norm N>
GSKNN_ALWAYS_INLINE __m256 combine1f(__m256 acc, __m256 qv, __m256 rb) {
  if constexpr (N == Norm::kL2Sq || N == Norm::kCosine) {
    return _mm256_fmadd_ps(qv, rb, acc);
  } else if constexpr (N == Norm::kL1) {
    return _mm256_add_ps(acc, abs_ps(_mm256_sub_ps(qv, rb)));
  } else {  // kLInf
    return _mm256_max_ps(acc, abs_ps(_mm256_sub_ps(qv, rb)));
  }
}

template <Norm N>
GSKNN_ALWAYS_INLINE __m256 finish1f(__m256 acc, __m256 q2v, float r2j) {
  const __m256 r2b = _mm256_set1_ps(r2j);
  if constexpr (N == Norm::kL2Sq) {
    const __m256 two = _mm256_set1_ps(2.0f);
    return _mm256_max_ps(_mm256_setzero_ps(),
                         _mm256_fnmadd_ps(two, acc, _mm256_add_ps(q2v, r2b)));
  } else if constexpr (N == Norm::kCosine) {
    const __m256 one = _mm256_set1_ps(1.0f);
    const __m256 denom = _mm256_sqrt_ps(_mm256_mul_ps(q2v, r2b));
    const __m256 dist = _mm256_sub_ps(one, _mm256_div_ps(acc, denom));
    const __m256 degenerate =
        _mm256_cmp_ps(denom, _mm256_setzero_ps(), _CMP_LE_OQ);
    return _mm256_blendv_ps(dist, one, degenerate);
  } else {
    return acc;
  }
}

/// Deferred selection, float column: LUT compress of the passing lanes.
GSKNN_ALWAYS_INLINE void defer_colf(const SelectCtxT<float>& sel, int j,
                                    __m256 col, __m256 roots) {
  const unsigned m = static_cast<unsigned>(
      _mm256_movemask_ps(_mm256_cmp_ps(col, roots, _CMP_LE_OQ)));
  if (GSKNN_LIKELY(m == 0)) return;
  alignas(32) float sf[kMrF];
  const __m256i perm =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(kComp8.perm[m]));
  _mm256_store_ps(sf, _mm256_permutevar8x32_ps(col, perm));
  const int pc = __builtin_popcount(m);
  const int id = sel.cand_ids[j];
  for (int t = 0; t < pc; ++t) {
    sel_defer(sel, static_cast<int>(kComp8.rows[m][t]), sf[t], id);
  }
}

GSKNN_ALWAYS_INLINE void select_colf(const SelectCtxT<float>& sel, int j,
                                     __m256 col, __m256 roots, int rows) {
  unsigned mask = static_cast<unsigned>(
      _mm256_movemask_ps(_mm256_cmp_ps(col, roots, _CMP_LE_OQ)));
  if (GSKNN_LIKELY(mask == 0)) return;
  alignas(32) float vals[kMrF];
  _mm256_store_ps(vals, col);
  const int id = sel.cand_ids[j];
  while (mask != 0) {
    const int i = __builtin_ctz(mask);
    mask &= mask - 1;
    if (i < rows && sel_accepts(vals[i], id, sel.hd[i], sel.hi[i])) {
      sel_insert(sel, i, vals[i], id);
    }
  }
}

/// Deferred tile epilogue, out of line for the same code-size reason as the
/// f64 helper above.
GSKNN_NOINLINE void defer_tilef_avx2(const SelectCtxT<float>& sel, __m256 a0,
                                     __m256 a1, __m256 a2, __m256 a3,
                                     __m256 a4, __m256 a5, __m256 a6,
                                     __m256 a7, int cols) {
  const __m256 roots =
      _mm256_set_ps(sel.hd[7][0], sel.hd[6][0], sel.hd[5][0], sel.hd[4][0],
                    sel.hd[3][0], sel.hd[2][0], sel.hd[1][0], sel.hd[0][0]);
  defer_colf(sel, 0, a0, roots);
  if (cols > 1) defer_colf(sel, 1, a1, roots);
  if (cols > 2) defer_colf(sel, 2, a2, roots);
  if (cols > 3) defer_colf(sel, 3, a3, roots);
  if (cols > 4) defer_colf(sel, 4, a4, roots);
  if (cols > 5) defer_colf(sel, 5, a5, roots);
  if (cols > 6) defer_colf(sel, 6, a6, roots);
  if (cols > 7) defer_colf(sel, 7, a7, roots);
}

template <Norm N>
void micro_avx2_f32_impl(int dcur, const float* GSKNN_RESTRICT Qp,
                         const float* GSKNN_RESTRICT Rp,
                         const float* GSKNN_RESTRICT Cin, int ldin,
                         float* GSKNN_RESTRICT Cout, int ldout,
                         bool c_colmajor, const float* GSKNN_RESTRICT q2,
                         const float* GSKNN_RESTRICT r2, bool finish,
                         int rows, int cols, const SelectCtxT<float>* sel,
                         double lp) {
  (void)lp;
  __m256 a0, a1, a2, a3, a4, a5, a6, a7;  // column j = 8 tile rows

  if (Cin != nullptr) {
    if (c_colmajor) {
      a0 = _mm256_loadu_ps(Cin + 0L * ldin);
      a1 = _mm256_loadu_ps(Cin + 1L * ldin);
      a2 = _mm256_loadu_ps(Cin + 2L * ldin);
      a3 = _mm256_loadu_ps(Cin + 3L * ldin);
      a4 = _mm256_loadu_ps(Cin + 4L * ldin);
      a5 = _mm256_loadu_ps(Cin + 5L * ldin);
      a6 = _mm256_loadu_ps(Cin + 6L * ldin);
      a7 = _mm256_loadu_ps(Cin + 7L * ldin);
    } else {
      alignas(32) float t[kNrF][kMrF];
      for (int i = 0; i < kMrF; ++i) {
        for (int j = 0; j < kNrF; ++j) {
          t[j][i] = Cin[static_cast<long>(i) * ldin + j];
        }
      }
      a0 = _mm256_load_ps(t[0]);
      a1 = _mm256_load_ps(t[1]);
      a2 = _mm256_load_ps(t[2]);
      a3 = _mm256_load_ps(t[3]);
      a4 = _mm256_load_ps(t[4]);
      a5 = _mm256_load_ps(t[5]);
      a6 = _mm256_load_ps(t[6]);
      a7 = _mm256_load_ps(t[7]);
    }
  } else {
    a0 = a1 = a2 = a3 = _mm256_setzero_ps();
    a4 = a5 = a6 = a7 = _mm256_setzero_ps();
  }

  // Q-panel look-ahead only — see the f64 kernel's note.
  const float* ap = Qp;
  const float* bp = Rp;
  for (int p = 0; p < dcur; ++p) {
    const __m256 qv = _mm256_load_ps(ap);
    GSKNN_PREFETCH_R(ap + kMicroQPrefetchIters * kMrF);
    a0 = combine1f<N>(a0, qv, _mm256_broadcast_ss(bp + 0));
    a1 = combine1f<N>(a1, qv, _mm256_broadcast_ss(bp + 1));
    a2 = combine1f<N>(a2, qv, _mm256_broadcast_ss(bp + 2));
    a3 = combine1f<N>(a3, qv, _mm256_broadcast_ss(bp + 3));
    a4 = combine1f<N>(a4, qv, _mm256_broadcast_ss(bp + 4));
    a5 = combine1f<N>(a5, qv, _mm256_broadcast_ss(bp + 5));
    a6 = combine1f<N>(a6, qv, _mm256_broadcast_ss(bp + 6));
    a7 = combine1f<N>(a7, qv, _mm256_broadcast_ss(bp + 7));
    ap += kMrF;
    bp += kNrF;
  }

  if (finish && (N == Norm::kL2Sq || N == Norm::kCosine)) {
    const __m256 q2v = _mm256_load_ps(q2);
    a0 = finish1f<N>(a0, q2v, r2[0]);
    a1 = finish1f<N>(a1, q2v, r2[1]);
    a2 = finish1f<N>(a2, q2v, r2[2]);
    a3 = finish1f<N>(a3, q2v, r2[3]);
    a4 = finish1f<N>(a4, q2v, r2[4]);
    a5 = finish1f<N>(a5, q2v, r2[5]);
    a6 = finish1f<N>(a6, q2v, r2[6]);
    a7 = finish1f<N>(a7, q2v, r2[7]);
  }

  if (sel != nullptr) {
    if (sel->buf_d != nullptr) {
      defer_tilef_avx2(*sel, a0, a1, a2, a3, a4, a5, a6, a7, cols);
    } else {
      const __m256 roots = _mm256_set_ps(
          sel->hd[7][0], sel->hd[6][0], sel->hd[5][0], sel->hd[4][0],
          sel->hd[3][0], sel->hd[2][0], sel->hd[1][0], sel->hd[0][0]);
      select_colf(*sel, 0, a0, roots, rows);
      if (cols > 1) select_colf(*sel, 1, a1, roots, rows);
      if (cols > 2) select_colf(*sel, 2, a2, roots, rows);
      if (cols > 3) select_colf(*sel, 3, a3, roots, rows);
      if (cols > 4) select_colf(*sel, 4, a4, roots, rows);
      if (cols > 5) select_colf(*sel, 5, a5, roots, rows);
      if (cols > 6) select_colf(*sel, 6, a6, roots, rows);
      if (cols > 7) select_colf(*sel, 7, a7, roots, rows);
    }
  }

  if (Cout != nullptr) {
    if (c_colmajor) {
      _mm256_storeu_ps(Cout + 0L * ldout, a0);
      _mm256_storeu_ps(Cout + 1L * ldout, a1);
      _mm256_storeu_ps(Cout + 2L * ldout, a2);
      _mm256_storeu_ps(Cout + 3L * ldout, a3);
      _mm256_storeu_ps(Cout + 4L * ldout, a4);
      _mm256_storeu_ps(Cout + 5L * ldout, a5);
      _mm256_storeu_ps(Cout + 6L * ldout, a6);
      _mm256_storeu_ps(Cout + 7L * ldout, a7);
    } else {
      alignas(32) float t[kNrF][kMrF];
      _mm256_store_ps(t[0], a0);
      _mm256_store_ps(t[1], a1);
      _mm256_store_ps(t[2], a2);
      _mm256_store_ps(t[3], a3);
      _mm256_store_ps(t[4], a4);
      _mm256_store_ps(t[5], a5);
      _mm256_store_ps(t[6], a6);
      _mm256_store_ps(t[7], a7);
      for (int i = 0; i < kMrF; ++i) {
        for (int j = 0; j < kNrF; ++j) {
          Cout[static_cast<long>(i) * ldout + j] = t[j][i];
        }
      }
    }
  }
}

}  // namespace

MicroKernelT<float> micro_avx2_f32(Norm norm) {
  switch (norm) {
    case Norm::kL2Sq:
      return {micro_avx2_f32_impl<Norm::kL2Sq>, kMrF, kNrF};
    case Norm::kL1:
      return {micro_avx2_f32_impl<Norm::kL1>, kMrF, kNrF};
    case Norm::kLInf:
      return {micro_avx2_f32_impl<Norm::kLInf>, kMrF, kNrF};
    case Norm::kCosine:
      return {micro_avx2_f32_impl<Norm::kCosine>, kMrF, kNrF};
    case Norm::kLp:
      return {nullptr, 0, 0};
  }
  return {nullptr, 0, 0};
}

}  // namespace gsknn::core

#endif  // GSKNN_BUILD_AVX2
