// Workspace planning for the six-loop driver (gsknn/core/workspace.hpp).
//
// Everything the driver carves from its arenas is computed here first, chunk
// by chunk, with the same rounding WorkspaceArena::alloc applies — the plan
// is byte-exact, not an estimate. The kernel/blocking resolution helpers the
// driver shares live here too, so the planner and the driver cannot drift.
#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "gsknn/common/threads.hpp"
#include "gsknn/common/workspace.hpp"
#include "gsknn/core/workspace.hpp"
#include "micro.hpp"

namespace gsknn {
namespace core {

bool defer_enabled() {
  static const bool on = [] {
    const char* e = std::getenv("GSKNN_DEFER");
    return e == nullptr || e[0] != '0';
  }();
  return on;
}

template <typename T>
void resolve_kernel_and_blocking(SimdLevel level, const KnnConfig& cfg,
                                 MicroKernelT<T>& mk, BlockingParams& bp,
                                 SimdLevel& chosen) {
  mk = select_micro_t<T>(level, cfg.norm);
  chosen = level;
  if (cfg.blocking.has_value()) {
    bp = *cfg.blocking;
    if (!bp.valid()) {
      throw StatusError(Status::kBadConfig,
                        "gsknn: invalid blocking parameters");
    }
    if (bp.mr != mk.mr || bp.nr != mk.nr) {
      for (SimdLevel lv : {SimdLevel::kAvx2, SimdLevel::kScalar}) {
        if (lv > level) continue;
        const MicroKernelT<T> alt = select_micro_t<T>(lv, cfg.norm);
        if (alt.fn != nullptr && alt.mr == bp.mr && alt.nr == bp.nr) {
          mk = alt;
          chosen = lv;
          return;
        }
      }
      throw StatusError(
          Status::kBadConfig,
          "gsknn: blocking mr/nr do not match any available micro-kernel");
    }
  } else {
    bp = derive_blocking(mk.mr, mk.nr, sizeof(T));
  }
}

template void resolve_kernel_and_blocking<double>(SimdLevel, const KnnConfig&,
                                                  MicroKernelT<double>&,
                                                  BlockingParams&, SimdLevel&);
template void resolve_kernel_and_blocking<float>(SimdLevel, const KnnConfig&,
                                                 MicroKernelT<float>&,
                                                 BlockingParams&, SimdLevel&);

int balanced_mc(int m, int mc, int mr, int threads) {
  assert(m >= 0 && mc > 0 && mr > 0 && threads >= 1);
  if (threads <= 1) return mc;
  const int blocks = static_cast<int>(ceil_div(m, mc));
  const int target = static_cast<int>(round_up(blocks, threads));
  int out = static_cast<int>(
      round_up(ceil_div(static_cast<std::size_t>(m),
                        static_cast<std::size_t>(target)),
               static_cast<std::size_t>(mr)));
  return out < mr ? mr : out;
}

namespace {

/// Mirror of the driver's buffer carving for one (variant, blocking) choice.
/// Every line corresponds to an AlignedBuffer/arena chunk in driver.cpp; the
/// chunk_bytes rounding matches WorkspaceArena::alloc exactly.
void compute_footprint(int m, int n, int d, bool needs_norms,
                       bool defer_possible, std::size_t elem,
                       int tmr, int tnr, bool packed_refs,
                       WorkspacePlan& plan) {
  const BlockingParams& bp = plan.blocking;
  const auto cb = [](std::size_t count, std::size_t es) {
    return WorkspaceArena::chunk_bytes(count, es);
  };

  const std::size_t db_max =
      static_cast<std::size_t>(std::min(d, bp.dc));
  const std::size_t nbpad_max = round_up(
      static_cast<std::size_t>(std::min(n, bp.nc)),
      static_cast<std::size_t>(tnr));

  // Shared: packed Rc panel (+ reference norms at the last depth block).
  // A warm packed-refs call reads both straight out of the cache's resident
  // blocks (budgeted by PackedRefs::Options::budget_bytes), so they leave
  // this call's footprint entirely.
  std::size_t shared = 0;
  if (!packed_refs) {
    shared = cb(nbpad_max * db_max, elem);
    if (needs_norms) shared += cb(nbpad_max, elem);
  }

  // Shared: distance buffer. Var#1 needs it only to carry the rank-dc
  // accumulation across depth blocks (d > dc); Var#2/3/5 hold the current
  // nc-wide panel; Var#6 the full m × n matrix. Layout mirrors the driver:
  // Var#1 column-major tiles, the rest query-major, both with one extra
  // cache line on the leading dimension.
  const bool needs_cbuf = (plan.variant != Variant::kVar1) || (d > bp.dc);
  if (needs_cbuf) {
    const int width = (plan.variant == Variant::kVar6) ? n : std::min(n, bp.nc);
    const std::size_t wpad = round_up(static_cast<std::size_t>(width),
                                      static_cast<std::size_t>(tnr));
    const std::size_t mpad = round_up(static_cast<std::size_t>(m),
                                      static_cast<std::size_t>(tmr));
    const bool c_colmajor = (plan.variant == Variant::kVar1);
    const std::size_t ld = (c_colmajor ? mpad : wpad) + 64 / elem;
    shared += cb(ld * (c_colmajor ? wpad : mpad), elem);
  }

  // Per thread: packed Qc panel (+ query norms) for the largest mc-block,
  // plus the Var#1 deferred-selection candidate buffers when the call could
  // take the deferred path (k >= kDeferMinK; GSKNN_DEFER on).
  const std::size_t mbpad_max = round_up(
      static_cast<std::size_t>(std::min(m, bp.mc)),
      static_cast<std::size_t>(tmr));
  std::size_t per_thread = cb(mbpad_max * db_max, elem);
  if (needs_norms) per_thread += cb(mbpad_max, elem);
  if (defer_possible && plan.variant == Variant::kVar1) {
    per_thread += cb(mbpad_max * kCandBufLen, elem);         // cand_d
    per_thread += cb(mbpad_max * kCandBufLen, sizeof(int));  // cand_id
    per_thread += cb(mbpad_max, sizeof(int));                // cand_cnt
  }

  plan.shared_bytes = shared;
  plan.per_thread_bytes = per_thread;
}

}  // namespace

WorkspacePlan plan_workspace(int m, int n, int d, Variant variant,
                             const BlockingParams& bp, int tmr, int tnr,
                             int threads, bool needs_norms,
                             bool defer_possible, std::size_t elem,
                             std::size_t cap_bytes, bool packed_refs) {
  assert(variant != Variant::kAuto && "plan_workspace wants a concrete variant");
  WorkspacePlan plan;
  plan.variant = variant;
  plan.blocking = bp;
  plan.threads = threads;
  plan.cap_bytes = cap_bytes;
  if (m <= 0 || n <= 0 || d <= 0) return plan;  // driver returns before packing

  compute_footprint(m, n, d, needs_norms, defer_possible, elem, tmr, tnr,
                    packed_refs, plan);
  if (cap_bytes == 0) return plan;

  // Degradation ladder (see the header comment): every step is bitwise-
  // result-preserving, so the only cost of a cap is extra packing passes.
  // Warm packed-refs calls only take the steps that leave the cache's block
  // geometry (nc, dc) alone — the kernel must walk the cached blocks as
  // they were packed.
  while (plan.total_bytes() > cap_bytes) {
    if (plan.variant == Variant::kVar6) {
      // The full m × n distance matrix cannot be retiled away; Var#5 is the
      // paper's bounded-memory formulation of the same selection.
      plan.variant = Variant::kVar5;
    } else if (!packed_refs && plan.blocking.nc > tnr) {
      plan.blocking.nc = std::max(
          tnr, static_cast<int>(round_up(
                   static_cast<std::size_t>(plan.blocking.nc / 2),
                   static_cast<std::size_t>(tnr))));
    } else if (plan.blocking.mc > tmr) {
      plan.blocking.mc = std::max(
          tmr, static_cast<int>(round_up(
                   static_cast<std::size_t>(plan.blocking.mc / 2),
                   static_cast<std::size_t>(tmr))));
    } else if (!packed_refs && plan.blocking.dc > kWorkspaceDcFloor) {
      // Shrinking dc below d ADDS the rank-dc carry buffer on the Var#1
      // path, so only take the step when it strictly helps.
      WorkspacePlan trial = plan;
      trial.blocking.dc = std::max(kWorkspaceDcFloor, plan.blocking.dc / 2);
      compute_footprint(m, n, d, needs_norms, defer_possible, elem, tmr, tnr,
                        packed_refs, trial);
      if (trial.total_bytes() >= plan.total_bytes()) break;
      plan.blocking = trial.blocking;
      plan.shared_bytes = trial.shared_bytes;
      plan.per_thread_bytes = trial.per_thread_bytes;
      ++plan.retile_steps;
      continue;
    } else {
      break;  // at every floor and still over the cap
    }
    ++plan.retile_steps;
    compute_footprint(m, n, d, needs_norms, defer_possible, elem, tmr, tnr,
                      packed_refs, plan);
  }
  plan.fits = plan.total_bytes() <= cap_bytes;
  return plan;
}

}  // namespace core

template <typename T>
WorkspacePlan plan_knn_workspace(int m, int n, int d, int k,
                                 const KnnConfig& cfg) {
  const Variant variant = resolve_variant(m, n, d, k, cfg);
  const SimdLevel level = cpu_features().best_level();
  core::MicroKernelT<T> mk;
  BlockingParams bp;
  SimdLevel chosen = level;
  core::resolve_kernel_and_blocking<T>(level, cfg, mk, bp, chosen);
  const int threads = resolve_threads(cfg.threads);
  bp.mc = core::balanced_mc(m, bp.mc, mk.mr, threads);
  const bool needs_norms =
      (cfg.norm == Norm::kL2Sq || cfg.norm == Norm::kCosine);
  const bool defer_possible = k >= core::kDeferMinK && core::defer_enabled();
  const std::size_t cap = cfg.max_workspace_bytes != 0
                              ? cfg.max_workspace_bytes
                              : max_workspace_env();
  return core::plan_workspace(m, n, d, variant, bp, mk.mr, mk.nr, threads,
                              needs_norms, defer_possible, sizeof(T), cap);
}

template WorkspacePlan plan_knn_workspace<double>(int, int, int, int,
                                                  const KnnConfig&);
template WorkspacePlan plan_knn_workspace<float>(int, int, int, int,
                                                 const KnnConfig&);

}  // namespace gsknn
