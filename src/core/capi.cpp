// C API implementation (see include/gsknn/capi.h). Exceptions are caught at
// the boundary and surfaced through gsknn_last_error().
#include "gsknn/capi.h"

#include <algorithm>
#include <cstring>
#include <exception>
#include <memory>
#include <string>

#include "gsknn/common/arch.hpp"
#include "gsknn/common/cancel.hpp"
#include "gsknn/common/metrics.hpp"
#include "gsknn/common/pmu.hpp"
#include "gsknn/common/trace.hpp"
#include "gsknn/core/diag.hpp"
#include "gsknn/core/knn.hpp"
#include "gsknn/core/packed_refs.hpp"
#include "gsknn/data/io.hpp"

#include "capi_handles.hpp"

namespace {

thread_local std::string tl_error = "ok";

void set_error(const char* what) { tl_error = what; }

/// Map the C++ Status enum onto the C status codes (kOk → GSKNN_OK, ...).
int status_code(gsknn::Status s) {
  switch (s) {
    case gsknn::Status::kOk:
      return GSKNN_OK;
    case gsknn::Status::kInvalidArgument:
      return GSKNN_ERR_INVALID_ARGUMENT;
    case gsknn::Status::kBadIndex:
      return GSKNN_ERR_BAD_INDEX;
    case gsknn::Status::kBadConfig:
      return GSKNN_ERR_BAD_CONFIG;
    case gsknn::Status::kNonFinite:
      return GSKNN_ERR_NONFINITE;
    case gsknn::Status::kUnsupported:
      return GSKNN_ERR_UNSUPPORTED;
    case gsknn::Status::kInternal:
      return GSKNN_ERR_INTERNAL;
    case gsknn::Status::kResourceExhausted:
      return GSKNN_ERR_RESOURCE_EXHAUSTED;
    case gsknn::Status::kDeadlineExceeded:
      return GSKNN_ERR_DEADLINE_EXCEEDED;
    case gsknn::Status::kCancelled:
      return GSKNN_ERR_CANCELLED;
    case gsknn::Status::kStale:
      return GSKNN_ERR_STALE;
  }
  return GSKNN_ERR_INTERNAL;
}

/// Translate the C norm/variant/lp/threads quadruple into a KnnConfig.
/// Returns GSKNN_OK or the status code to hand back (error already set).
int parse_search_config(int norm, int variant, double lp, int threads,
                        gsknn::KnnConfig& cfg) {
  switch (norm) {
    case GSKNN_NORM_L2SQ:
      cfg.norm = gsknn::Norm::kL2Sq;
      break;
    case GSKNN_NORM_L1:
      cfg.norm = gsknn::Norm::kL1;
      break;
    case GSKNN_NORM_LINF:
      cfg.norm = gsknn::Norm::kLInf;
      break;
    case GSKNN_NORM_LP:
      cfg.norm = gsknn::Norm::kLp;
      break;
    case GSKNN_NORM_COSINE:
      cfg.norm = gsknn::Norm::kCosine;
      break;
    default:
      set_error("gsknn_search: unknown norm");
      return GSKNN_ERR_BAD_CONFIG;
  }
  switch (variant) {
    case GSKNN_VARIANT_AUTO:
      cfg.variant = gsknn::Variant::kAuto;
      break;
    case GSKNN_VARIANT_1:
      cfg.variant = gsknn::Variant::kVar1;
      break;
    case GSKNN_VARIANT_2:
      cfg.variant = gsknn::Variant::kVar2;
      break;
    case GSKNN_VARIANT_3:
      cfg.variant = gsknn::Variant::kVar3;
      break;
    case GSKNN_VARIANT_5:
      cfg.variant = gsknn::Variant::kVar5;
      break;
    case GSKNN_VARIANT_6:
      cfg.variant = gsknn::Variant::kVar6;
      break;
    default:
      set_error("gsknn_search: unknown variant");
      return GSKNN_ERR_BAD_CONFIG;
  }
  cfg.p = lp;
  cfg.threads = threads;
  return GSKNN_OK;
}

}  // namespace

// gsknn_table / gsknn_result live in capi_handles.hpp (shared with the
// serving C API translation unit).

struct gsknn_profile {
  gsknn::telemetry::KernelProfile profile;
  std::string json;  // owns the buffer gsknn_profile_json() returns
};

struct gsknn_trace {
  gsknn::telemetry::TraceSink sink;
  std::string json;  // owns the buffer gsknn_trace_json() returns

  explicit gsknn_trace(std::size_t ring_kb) : sink(ring_kb) {}
};

struct gsknn_cancel_token {
  gsknn::CancelToken token;
};

struct gsknn_packed_refs {
  gsknn::PackedRefs refs;
};

struct gsknn_metrics {
  gsknn::metrics::MetricsSnapshot snap;
  std::string text;  // owns the json/prometheus buffers handed back
};

extern "C" {

gsknn_table* gsknn_table_create(int d, int n, const double* coords) {
  try {
    if (d <= 0 || n < 0 || (n > 0 && coords == nullptr)) {
      set_error("gsknn_table_create: bad arguments");
      return nullptr;
    }
    auto* t = new gsknn_table;
    t->table.resize(d, n);
    std::memcpy(t->table.data(), coords,
                sizeof(double) * static_cast<std::size_t>(d) * n);
    t->table.compute_norms();
    return t;
  } catch (const std::exception& e) {
    set_error(e.what());
    return nullptr;
  }
}

gsknn_table* gsknn_table_load(const char* path) {
  try {
    auto t = std::make_unique<gsknn_table>();
    try {
      t->table = gsknn::load_table(path);
    } catch (const std::exception&) {
      t->table = gsknn::load_csv(path);
    }
    return t.release();
  } catch (const std::exception& e) {
    set_error(e.what());
    return nullptr;
  }
}

int gsknn_table_dim(const gsknn_table* t) { return t ? t->table.dim() : -1; }
int gsknn_table_size(const gsknn_table* t) { return t ? t->table.size() : -1; }
void gsknn_table_destroy(gsknn_table* t) { delete t; }

gsknn_result* gsknn_result_create(int m, int k) {
  try {
    if (m < 0 || k <= 0) {
      set_error("gsknn_result_create: bad arguments");
      return nullptr;
    }
    auto* r = new gsknn_result;
    r->table.resize(m, k);
    return r;
  } catch (const std::exception& e) {
    set_error(e.what());
    return nullptr;
  }
}

void gsknn_result_destroy(gsknn_result* r) { delete r; }

int gsknn_search_traced(const gsknn_table* table, const int* qidx, int mq,
                        const int* ridx, int nq, int norm, int variant,
                        double lp, int threads, gsknn_result* result,
                        gsknn_profile* profile, gsknn_trace* trace) {
  if (table == nullptr || result == nullptr || mq < 0 || nq < 0 ||
      (mq > 0 && qidx == nullptr) || (nq > 0 && ridx == nullptr)) {
    set_error("gsknn_search: null argument or negative count");
    return GSKNN_ERR_INVALID_ARGUMENT;
  }
  try {
    gsknn::KnnConfig cfg;
    const int rc = parse_search_config(norm, variant, lp, threads, cfg);
    if (rc != GSKNN_OK) return rc;
    cfg.profile = profile != nullptr ? &profile->profile : nullptr;
    cfg.trace = trace != nullptr ? &trace->sink : nullptr;
    gsknn::knn_kernel(table->table, {qidx, static_cast<std::size_t>(mq)},
                      {ridx, static_cast<std::size_t>(nq)}, result->table,
                      cfg);
    return GSKNN_OK;
  } catch (const gsknn::StatusError& e) {
    set_error(e.what());
    return status_code(e.status());
  } catch (const std::exception& e) {
    set_error(e.what());
    return GSKNN_ERR_INTERNAL;
  }
}

const char* gsknn_status_name(int status) {
  switch (status) {
    case GSKNN_OK:
      return "ok";
    case GSKNN_ERR_INVALID_ARGUMENT:
      return "invalid_argument";
    case GSKNN_ERR_BAD_INDEX:
      return "bad_index";
    case GSKNN_ERR_BAD_CONFIG:
      return "bad_config";
    case GSKNN_ERR_NONFINITE:
      return "non_finite";
    case GSKNN_ERR_UNSUPPORTED:
      return "unsupported";
    case GSKNN_ERR_INTERNAL:
      return "internal";
    case GSKNN_ERR_RESOURCE_EXHAUSTED:
      return "resource_exhausted";
    case GSKNN_ERR_DEADLINE_EXCEEDED:
      return "deadline_exceeded";
    case GSKNN_ERR_CANCELLED:
      return "cancelled";
    case GSKNN_ERR_STALE:
      return "stale";
  }
  return "unknown";
}

int gsknn_search_profiled(const gsknn_table* table, const int* qidx, int mq,
                          const int* ridx, int nq, int norm, int variant,
                          double lp, int threads, gsknn_result* result,
                          gsknn_profile* profile) {
  return gsknn_search_traced(table, qidx, mq, ridx, nq, norm, variant, lp,
                             threads, result, profile, nullptr);
}

int gsknn_search(const gsknn_table* table, const int* qidx, int mq,
                 const int* ridx, int nq, int norm, int variant, double lp,
                 int threads, gsknn_result* result) {
  return gsknn_search_traced(table, qidx, mq, ridx, nq, norm, variant, lp,
                             threads, result, nullptr, nullptr);
}

gsknn_profile* gsknn_profile_create(void) {
  try {
    return new gsknn_profile;
  } catch (const std::exception& e) {
    set_error(e.what());
    return nullptr;
  }
}

void gsknn_profile_destroy(gsknn_profile* p) { delete p; }

void gsknn_profile_reset(gsknn_profile* p) {
  if (p != nullptr) p->profile.reset();
}

double gsknn_profile_wall_seconds(const gsknn_profile* p) {
  return p != nullptr ? p->profile.wall_seconds : -1.0;
}

double gsknn_profile_phase_seconds(const gsknn_profile* p, int phase) {
  if (p == nullptr || phase < 0 || phase >= gsknn::telemetry::kPhaseCount) {
    return -1.0;
  }
  return p->profile.phase_seconds[phase];
}

const char* gsknn_profile_phase_name(int phase) {
  if (phase < 0 || phase >= gsknn::telemetry::kPhaseCount) return nullptr;
  return gsknn::telemetry::phase_name(
      static_cast<gsknn::telemetry::Phase>(phase));
}

uint64_t gsknn_profile_counter(const gsknn_profile* p, int counter) {
  if (p == nullptr || counter < 0 ||
      counter >= gsknn::telemetry::kCounterCount) {
    return 0;
  }
  return p->profile.counters[counter];
}

int gsknn_profile_counters_enabled(const gsknn_profile* p) {
  return (p != nullptr && p->profile.counters_enabled) ? 1 : 0;
}

double gsknn_profile_gflops(const gsknn_profile* p) {
  return p != nullptr ? p->profile.gflops() : -1.0;
}

const char* gsknn_profile_json(gsknn_profile* p) {
  if (p == nullptr) return "{}";
  try {
    p->json = p->profile.to_json();
  } catch (const std::exception& e) {
    set_error(e.what());
    return "{}";
  }
  return p->json.c_str();
}

int gsknn_result_row(const gsknn_result* r, int row, int cap, int* ids,
                     double* dists) {
  if (r == nullptr || row < 0 || row >= r->table.rows() || cap < 0) {
    set_error("gsknn_result_row: bad arguments");
    return -1;
  }
  const auto sorted = r->table.sorted_row(row);
  const int count = static_cast<int>(
      std::min<std::size_t>(sorted.size(), static_cast<std::size_t>(cap)));
  for (int i = 0; i < count; ++i) {
    if (ids != nullptr) ids[i] = sorted[static_cast<std::size_t>(i)].second;
    if (dists != nullptr) dists[i] = sorted[static_cast<std::size_t>(i)].first;
  }
  return count;
}

int gsknn_result_row_complete(const gsknn_result* r, int row) {
  if (r == nullptr || row < 0 || row >= r->table.rows()) {
    set_error("gsknn_result_row_complete: bad arguments");
    return -1;
  }
  return r->table.row_complete(row) ? 1 : 0;
}

gsknn_cancel_token* gsknn_cancel_token_create(void) {
  try {
    return new gsknn_cancel_token;
  } catch (const std::exception& e) {
    set_error(e.what());
    return nullptr;
  }
}

void gsknn_cancel_token_destroy(gsknn_cancel_token* c) { delete c; }

void gsknn_cancel_token_cancel(gsknn_cancel_token* c) {
  if (c != nullptr) c->token.cancel();
}

int gsknn_cancel_token_cancelled(const gsknn_cancel_token* c) {
  return (c != nullptr && c->token.cancelled()) ? 1 : 0;
}

void gsknn_cancel_token_reset(gsknn_cancel_token* c) {
  if (c != nullptr) c->token.reset();
}

int gsknn_search_deadline_ms(const gsknn_table* table, const int* qidx,
                             int mq, const int* ridx, int nq, int norm,
                             int variant, double lp, int threads,
                             int64_t deadline_ms, gsknn_cancel_token* token,
                             size_t max_workspace_bytes,
                             gsknn_result* result) {
  if (table == nullptr || result == nullptr || mq < 0 || nq < 0 ||
      (mq > 0 && qidx == nullptr) || (nq > 0 && ridx == nullptr)) {
    set_error("gsknn_search_deadline_ms: null argument or negative count");
    return GSKNN_ERR_INVALID_ARGUMENT;
  }
  try {
    gsknn::KnnConfig cfg;
    const int rc = parse_search_config(norm, variant, lp, threads, cfg);
    if (rc != GSKNN_OK) return rc;
    if (deadline_ms > 0) cfg.deadline = gsknn::deadline_after_ms(deadline_ms);
    if (token != nullptr) cfg.cancel = &token->token;
    cfg.max_workspace_bytes = max_workspace_bytes;
    const gsknn::Status s = gsknn::knn_kernel_status(
        table->table, {qidx, static_cast<std::size_t>(mq)},
        {ridx, static_cast<std::size_t>(nq)}, result->table, cfg);
    if (s != gsknn::Status::kOk) {
      set_error(gsknn::status_name(s));
      return status_code(s);
    }
    return GSKNN_OK;
  } catch (const gsknn::StatusError& e) {
    set_error(e.what());
    return status_code(e.status());
  } catch (const std::exception& e) {
    set_error(e.what());
    return GSKNN_ERR_INTERNAL;
  }
}

gsknn_packed_refs* gsknn_packed_refs_create(const gsknn_table* table,
                                            const int* ridx, int nq, int norm,
                                            size_t budget_bytes, int eager) {
  if (table == nullptr || nq < 0 || (nq > 0 && ridx == nullptr)) {
    set_error("gsknn_packed_refs_create: null argument or negative count");
    return nullptr;
  }
  try {
    gsknn::KnnConfig probe;  // reuse the norm switch; variant is irrelevant
    if (parse_search_config(norm, GSKNN_VARIANT_AUTO, 2.0, 0, probe) !=
        GSKNN_OK) {
      set_error("gsknn_packed_refs_create: unknown norm");
      return nullptr;
    }
    auto p = std::make_unique<gsknn_packed_refs>();
    gsknn::PackedRefs::Options opt;
    opt.norm = probe.norm;
    opt.budget_bytes = budget_bytes;
    opt.eager = eager != 0;
    const gsknn::Status s = p->refs.build(
        table->table, {ridx, static_cast<std::size_t>(nq)}, opt);
    if (s != gsknn::Status::kOk) {
      set_error(gsknn::status_name(s));
      return nullptr;
    }
    return p.release();
  } catch (const std::exception& e) {
    set_error(e.what());
    return nullptr;
  }
}

void gsknn_packed_refs_destroy(gsknn_packed_refs* p) { delete p; }

uint64_t gsknn_packed_refs_epoch(const gsknn_packed_refs* p) {
  return p != nullptr ? p->refs.epoch() : 0;
}

int gsknn_packed_refs_size(const gsknn_packed_refs* p) {
  return p != nullptr ? p->refs.size() : -1;
}

int gsknn_packed_refs_insert(gsknn_packed_refs* p, const int* ids, int count) {
  if (p == nullptr || count < 0 || (count > 0 && ids == nullptr)) {
    set_error("gsknn_packed_refs_insert: null argument or negative count");
    return GSKNN_ERR_INVALID_ARGUMENT;
  }
  try {
    const gsknn::Status s =
        p->refs.insert({ids, static_cast<std::size_t>(count)});
    if (s != gsknn::Status::kOk) {
      set_error(gsknn::status_name(s));
      return status_code(s);
    }
    return GSKNN_OK;
  } catch (const std::exception& e) {
    set_error(e.what());
    return GSKNN_ERR_INTERNAL;
  }
}

int gsknn_packed_refs_erase(gsknn_packed_refs* p, const int* ids, int count) {
  if (p == nullptr || count < 0 || (count > 0 && ids == nullptr)) {
    set_error("gsknn_packed_refs_erase: null argument or negative count");
    return GSKNN_ERR_INVALID_ARGUMENT;
  }
  try {
    const gsknn::Status s =
        p->refs.erase({ids, static_cast<std::size_t>(count)});
    if (s != gsknn::Status::kOk) {
      set_error(gsknn::status_name(s));
      return status_code(s);
    }
    return GSKNN_OK;
  } catch (const std::exception& e) {
    set_error(e.what());
    return GSKNN_ERR_INTERNAL;
  }
}

uint64_t gsknn_packed_refs_stat(const gsknn_packed_refs* p, int stat) {
  if (p == nullptr) return 0;
  const gsknn::PackedRefs::Stats st = p->refs.stats();
  switch (stat) {
    case GSKNN_PACK_STAT_HITS:
      return st.hits;
    case GSKNN_PACK_STAT_MISSES:
      return st.misses;
    case GSKNN_PACK_STAT_EVICTIONS:
      return st.evictions;
    case GSKNN_PACK_STAT_BYTES_PACKED:
      return st.bytes_packed;
    case GSKNN_PACK_STAT_RESIDENT_BYTES:
      return st.resident_bytes;
    case GSKNN_PACK_STAT_RESIDENT_BLOCKS:
      return static_cast<uint64_t>(st.resident_blocks);
  }
  return 0;
}

int gsknn_packed_search(gsknn_packed_refs* refs, const int* qidx, int mq,
                        int norm, int variant, double lp, int threads,
                        uint64_t expected_epoch, gsknn_result* result) {
  if (refs == nullptr || result == nullptr || mq < 0 ||
      (mq > 0 && qidx == nullptr)) {
    set_error("gsknn_packed_search: null argument or negative count");
    return GSKNN_ERR_INVALID_ARGUMENT;
  }
  try {
    gsknn::KnnConfig cfg;
    const int rc = parse_search_config(norm, variant, lp, threads, cfg);
    if (rc != GSKNN_OK) return rc;
    const gsknn::Status s = gsknn::knn_kernel_status(
        refs->refs, {qidx, static_cast<std::size_t>(mq)}, result->table, cfg,
        {}, expected_epoch);
    if (s != gsknn::Status::kOk) {
      set_error(gsknn::status_name(s));
      return status_code(s);
    }
    return GSKNN_OK;
  } catch (const gsknn::StatusError& e) {
    set_error(e.what());
    return status_code(e.status());
  } catch (const std::exception& e) {
    set_error(e.what());
    return GSKNN_ERR_INTERNAL;
  }
}

int gsknn_pmu_available(void) {
  return gsknn::telemetry::pmu_available() ? 1 : 0;
}

uint64_t gsknn_profile_pmu(const gsknn_profile* p, int phase, int event) {
  if (p == nullptr || phase < 0 || phase >= gsknn::telemetry::kPhaseCount ||
      event < 0 || event >= gsknn::telemetry::kPmuEventCount) {
    return 0;
  }
  return p->profile.phase_pmu[phase][event];
}

int gsknn_profile_pmu_enabled(const gsknn_profile* p) {
  return (p != nullptr && p->profile.pmu_enabled) ? 1 : 0;
}

gsknn_trace* gsknn_trace_create(size_t ring_kb) {
  try {
    return new gsknn_trace(ring_kb);
  } catch (const std::exception& e) {
    set_error(e.what());
    return nullptr;
  }
}

void gsknn_trace_destroy(gsknn_trace* t) { delete t; }

void gsknn_trace_reset(gsknn_trace* t) {
  if (t != nullptr) t->sink.reset();
}

uint64_t gsknn_trace_span_count(const gsknn_trace* t) {
  return t != nullptr ? t->sink.span_count() : 0;
}

uint64_t gsknn_trace_dropped_spans(const gsknn_trace* t) {
  return t != nullptr ? t->sink.dropped_spans() : 0;
}

int gsknn_trace_thread_tracks(const gsknn_trace* t) {
  return t != nullptr ? t->sink.thread_tracks() : -1;
}

int gsknn_trace_write_json(const gsknn_trace* t, const char* path) {
  if (t == nullptr || path == nullptr) {
    set_error("gsknn_trace_write_json: null argument");
    return -1;
  }
  if (!t->sink.write_json(path)) {
    set_error("gsknn_trace_write_json: could not write file");
    return -2;
  }
  return 0;
}

const char* gsknn_trace_json(gsknn_trace* t) {
  if (t == nullptr) return "{}";
  try {
    t->json = t->sink.to_json();
  } catch (const std::exception& e) {
    set_error(e.what());
    return "{}";
  }
  return t->json.c_str();
}

int gsknn_metrics_enabled(void) {
  return gsknn::metrics::enabled() ? 1 : 0;
}

void gsknn_metrics_enable(int on) { gsknn::metrics::set_enabled(on != 0); }

void gsknn_metrics_reset(void) { gsknn::metrics::reset(); }

gsknn_metrics* gsknn_metrics_snapshot(void) {
  try {
    auto* m = new gsknn_metrics;
    m->snap = gsknn::metrics::snapshot();
    return m;
  } catch (const std::exception& e) {
    set_error(e.what());
    return nullptr;
  }
}

void gsknn_metrics_destroy(gsknn_metrics* m) { delete m; }

uint64_t gsknn_metrics_calls(const gsknn_metrics* m, int entry_point,
                             int status) {
  // C status codes are GSKNN_OK / negative GSKNN_ERR_*; the snapshot's
  // status axis is the non-negative gsknn::Status value.
  const int si = status <= 0 ? -status : -1;
  if (m == nullptr || entry_point < 0 ||
      entry_point >= gsknn::metrics::kEntryPointCount || si < 0 ||
      si >= gsknn::metrics::kStatusCount) {
    return 0;
  }
  return m->snap.calls[entry_point][si];
}

uint64_t gsknn_metrics_calls_total(const gsknn_metrics* m, int entry_point) {
  if (m == nullptr || entry_point < 0 ||
      entry_point >= gsknn::metrics::kEntryPointCount) {
    return 0;
  }
  return m->snap.calls_total(
      static_cast<gsknn::metrics::EntryPoint>(entry_point));
}

uint64_t gsknn_metrics_latency_quantile_ns(const gsknn_metrics* m,
                                           int entry_point, double q) {
  if (m == nullptr || entry_point < 0 ||
      entry_point >= gsknn::metrics::kEntryPointCount) {
    return 0;
  }
  return m->snap.latency_quantile_ns(
      static_cast<gsknn::metrics::EntryPoint>(entry_point), q);
}

uint64_t gsknn_metrics_counter(const gsknn_metrics* m, int counter) {
  if (m == nullptr || counter < 0 ||
      counter >= gsknn::metrics::kCounterCount) {
    return 0;
  }
  return m->snap.counters[counter];
}

uint64_t gsknn_metrics_drift_count(const gsknn_metrics* m, int f32) {
  if (m == nullptr || f32 < 0 || f32 > 1) return 0;
  return m->snap.drift_count(f32);
}

const char* gsknn_metrics_json(gsknn_metrics* m) {
  if (m == nullptr) return "{}";
  try {
    m->text = m->snap.to_json();
  } catch (const std::exception& e) {
    set_error(e.what());
    return "{}";
  }
  return m->text.c_str();
}

const char* gsknn_metrics_prometheus(gsknn_metrics* m) {
  if (m == nullptr) return "";
  try {
    m->text = m->snap.to_prometheus();
  } catch (const std::exception& e) {
    set_error(e.what());
    return "";
  }
  return m->text.c_str();
}

uint64_t gsknn_metrics_window_calls(const gsknn_metrics* m) {
  return m != nullptr ? m->snap.window_calls() : 0;
}

uint64_t gsknn_metrics_window_errors(const gsknn_metrics* m) {
  return m != nullptr ? m->snap.window_errors() : 0;
}

double gsknn_metrics_window_error_rate(const gsknn_metrics* m) {
  return m != nullptr ? m->snap.window_error_rate() : 0.0;
}

uint64_t gsknn_metrics_window_latency_quantile_ns(const gsknn_metrics* m,
                                                  double q) {
  return m != nullptr ? m->snap.window_latency_quantile_ns(q) : 0;
}

double gsknn_metrics_window_burn_rate(const gsknn_metrics* m, int which) {
  if (m == nullptr || which < 0 || which > 1) {
    set_error("gsknn_metrics_window_burn_rate: bad argument");
    return -1.0;
  }
  return which == 0 ? m->snap.window_latency_burn_rate()
                    : m->snap.window_availability_burn_rate();
}

int gsknn_diag_dump(const char* path) {
  if (path == nullptr) {
    set_error("gsknn_diag_dump: null path");
    return GSKNN_ERR_INVALID_ARGUMENT;
  }
  try {
    if (!gsknn::diag::write_bundle(path, "api")) {
      set_error("gsknn_diag_dump: could not write bundle");
      return GSKNN_ERR_INTERNAL;
    }
  } catch (const std::exception& e) {
    set_error(e.what());
    return GSKNN_ERR_INTERNAL;
  }
  return GSKNN_OK;
}

uint64_t gsknn_pmu_multiplexed_reads(void) {
  return gsknn::telemetry::pmu_multiplexed_reads();
}

const char* gsknn_last_error(void) { return tl_error.c_str(); }

const char* gsknn_arch_summary(void) {
  static const std::string summary = gsknn::arch_summary();
  return summary.c_str();
}

}  // extern "C"
