// AVX-512 transpose-pack kernels for the 16-wide slivers the 16-row
// micro-kernels consume (see pack_avx2.cpp for the scheme; this TU only
// widens the register block to 16 source rows per group).
//
// The transposes run on 256-bit halves: the data movement is memory-bound,
// so 4×4 ymm transposes reach the same bandwidth as a full 16×8 zmm
// shuffle ladder while keeping the port-5 pressure (and the code) low.
// Stores of finished sliver rows are full 64-byte lines.
#include "pack.hpp"

#if defined(GSKNN_BUILD_AVX512)

#include <immintrin.h>

namespace gsknn::core {

namespace {

GSKNN_ALWAYS_INLINE void transpose4d(__m256d& a, __m256d& b, __m256d& c,
                                     __m256d& d) {
  const __m256d t0 = _mm256_unpacklo_pd(a, b);
  const __m256d t1 = _mm256_unpackhi_pd(a, b);
  const __m256d t2 = _mm256_unpacklo_pd(c, d);
  const __m256d t3 = _mm256_unpackhi_pd(c, d);
  a = _mm256_permute2f128_pd(t0, t2, 0x20);
  b = _mm256_permute2f128_pd(t1, t3, 0x20);
  c = _mm256_permute2f128_pd(t0, t2, 0x31);
  d = _mm256_permute2f128_pd(t1, t3, 0x31);
}

GSKNN_ALWAYS_INLINE void transpose8f(__m256& r0, __m256& r1, __m256& r2,
                                     __m256& r3, __m256& r4, __m256& r5,
                                     __m256& r6, __m256& r7) {
  const __m256 t0 = _mm256_unpacklo_ps(r0, r1);
  const __m256 t1 = _mm256_unpackhi_ps(r0, r1);
  const __m256 t2 = _mm256_unpacklo_ps(r2, r3);
  const __m256 t3 = _mm256_unpackhi_ps(r2, r3);
  const __m256 t4 = _mm256_unpacklo_ps(r4, r5);
  const __m256 t5 = _mm256_unpackhi_ps(r4, r5);
  const __m256 t6 = _mm256_unpacklo_ps(r6, r7);
  const __m256 t7 = _mm256_unpackhi_ps(r6, r7);
  const __m256 s0 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 s1 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 s2 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 s3 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 s4 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 s5 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 s6 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 s7 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(3, 2, 3, 2));
  r0 = _mm256_permute2f128_ps(s0, s4, 0x20);
  r1 = _mm256_permute2f128_ps(s1, s5, 0x20);
  r2 = _mm256_permute2f128_ps(s2, s6, 0x20);
  r3 = _mm256_permute2f128_ps(s3, s7, 0x20);
  r4 = _mm256_permute2f128_ps(s0, s4, 0x31);
  r5 = _mm256_permute2f128_ps(s1, s5, 0x31);
  r6 = _mm256_permute2f128_ps(s2, s6, 0x31);
  r7 = _mm256_permute2f128_ps(s3, s7, 0x31);
}

template <int S, typename T>
GSKNN_ALWAYS_INLINE void prefetch_group(const T* GSKNN_RESTRICT x, int d,
                                        const int* GSKNN_RESTRICT idx, int i0,
                                        int count, int g, int p0) {
  if (g >= count) return;
  const int pts = (count - g < S) ? count - g : S;
  for (int i = 0; i < pts; ++i) {
    GSKNN_PREFETCH_R_LOW(x + static_cast<long>(idx[i0 + g + i]) * d + p0);
  }
}

template <int S, typename T>
void pack_group_scalar(const T* GSKNN_RESTRICT x, int d,
                       const int* GSKNN_RESTRICT idx, int i0, int pts, int p0,
                       int db, T* GSKNN_RESTRICT blk) {
  for (int i = 0; i < pts; ++i) {
    const T* GSKNN_RESTRICT src = x + static_cast<long>(idx[i0 + i]) * d + p0;
    for (int p = 0; p < db; ++p) blk[static_cast<long>(p) * S + i] = src[p];
  }
  for (int i = pts; i < S; ++i) {
    for (int p = 0; p < db; ++p) blk[static_cast<long>(p) * S + i] = T(0);
  }
}

}  // namespace

void pack_points_avx512_s16(const PointTableT<double>& X, const int* idx,
                            int i0, int count, int p0, int db, double* dst) {
  constexpr int S = 16;
  const int d = X.dim();
  const double* GSKNN_RESTRICT x = X.data();
  const bool pf = prefetch_params().enabled;
  for (int g = 0; g + S <= count; g += S) {
    double* GSKNN_RESTRICT blk = dst + static_cast<long>(g) * db;
    const double* GSKNN_RESTRICT src[S];
    for (int i = 0; i < S; ++i) {
      src[i] = x + static_cast<long>(idx[i0 + g + i]) * d + p0;
    }
    if (pf) prefetch_group<S>(x, d, idx, i0, count, g + S, p0);
    int p = 0;
    for (; p + 4 <= db; p += 4) {
      // Four 4-row quarters per depth chunk; quarter q fills lanes
      // 4q..4q+3 of each of the four finished sliver rows.
      for (int q = 0; q < 4; ++q) {
        __m256d a = _mm256_loadu_pd(src[4 * q + 0] + p);
        __m256d b = _mm256_loadu_pd(src[4 * q + 1] + p);
        __m256d c = _mm256_loadu_pd(src[4 * q + 2] + p);
        __m256d e = _mm256_loadu_pd(src[4 * q + 3] + p);
        transpose4d(a, b, c, e);
        _mm256_store_pd(blk + static_cast<long>(p + 0) * S + 4 * q, a);
        _mm256_store_pd(blk + static_cast<long>(p + 1) * S + 4 * q, b);
        _mm256_store_pd(blk + static_cast<long>(p + 2) * S + 4 * q, c);
        _mm256_store_pd(blk + static_cast<long>(p + 3) * S + 4 * q, e);
      }
    }
    for (; p < db; ++p) {
      for (int i = 0; i < S; ++i) {
        blk[static_cast<long>(p) * S + i] = src[i][p];
      }
    }
  }
  const int tail = count % S;
  if (tail != 0) {
    const int g = count - tail;
    pack_group_scalar<S>(x, d, idx, i0 + g, tail, p0, db,
                         dst + static_cast<long>(g) * db);
  }
}

void pack_points_avx512_s16f(const PointTableT<float>& X, const int* idx,
                             int i0, int count, int p0, int db, float* dst) {
  constexpr int S = 16;
  const int d = X.dim();
  const float* GSKNN_RESTRICT x = X.data();
  const bool pf = prefetch_params().enabled;
  for (int g = 0; g + S <= count; g += S) {
    float* GSKNN_RESTRICT blk = dst + static_cast<long>(g) * db;
    const float* GSKNN_RESTRICT src[S];
    for (int i = 0; i < S; ++i) {
      src[i] = x + static_cast<long>(idx[i0 + g + i]) * d + p0;
    }
    if (pf) prefetch_group<S>(x, d, idx, i0, count, g + S, p0);
    int p = 0;
    for (; p + 8 <= db; p += 8) {
      // Two 8-row halves per depth chunk of 8.
      for (int h = 0; h < 2; ++h) {
        __m256 r0 = _mm256_loadu_ps(src[8 * h + 0] + p);
        __m256 r1 = _mm256_loadu_ps(src[8 * h + 1] + p);
        __m256 r2 = _mm256_loadu_ps(src[8 * h + 2] + p);
        __m256 r3 = _mm256_loadu_ps(src[8 * h + 3] + p);
        __m256 r4 = _mm256_loadu_ps(src[8 * h + 4] + p);
        __m256 r5 = _mm256_loadu_ps(src[8 * h + 5] + p);
        __m256 r6 = _mm256_loadu_ps(src[8 * h + 6] + p);
        __m256 r7 = _mm256_loadu_ps(src[8 * h + 7] + p);
        transpose8f(r0, r1, r2, r3, r4, r5, r6, r7);
        float* GSKNN_RESTRICT base = blk + 8 * h;
        _mm256_store_ps(base + static_cast<long>(p + 0) * S, r0);
        _mm256_store_ps(base + static_cast<long>(p + 1) * S, r1);
        _mm256_store_ps(base + static_cast<long>(p + 2) * S, r2);
        _mm256_store_ps(base + static_cast<long>(p + 3) * S, r3);
        _mm256_store_ps(base + static_cast<long>(p + 4) * S, r4);
        _mm256_store_ps(base + static_cast<long>(p + 5) * S, r5);
        _mm256_store_ps(base + static_cast<long>(p + 6) * S, r6);
        _mm256_store_ps(base + static_cast<long>(p + 7) * S, r7);
      }
    }
    for (; p < db; ++p) {
      for (int i = 0; i < S; ++i) {
        blk[static_cast<long>(p) * S + i] = src[i][p];
      }
    }
  }
  const int tail = count % S;
  if (tail != 0) {
    const int g = count - tail;
    pack_group_scalar<S>(x, d, idx, i0 + g, tail, p0, db,
                         dst + static_cast<long>(g) * db);
  }
}

}  // namespace gsknn::core

#endif  // GSKNN_BUILD_AVX512
