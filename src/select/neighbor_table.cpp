// Explicit instantiations of the neighbor table (keeps the heavy template
// expansion out of every consumer TU).
#include "gsknn/select/neighbor_table.hpp"

namespace gsknn {

template class NeighborTableT<double>;
template class NeighborTableT<float>;

}  // namespace gsknn
