#include "gsknn/select/select.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "gsknn/select/heap.hpp"

namespace gsknn {

void select_heap_binary(const double* cand_dist, const int* cand_id, int n,
                        double* row_dist, int* row_id, int k) {
  for (int j = 0; j < n; ++j) {
    heap::binary_try_insert(row_dist, row_id, k, cand_dist[j], cand_id[j]);
  }
}

void select_heap_quad(const double* cand_dist, const int* cand_id, int n,
                      double* row_dist, int* row_id, int k) {
  for (int j = 0; j < n; ++j) {
    heap::quad_try_insert(row_dist, row_id, k, cand_dist[j], cand_id[j]);
  }
}

namespace {

using Pair = std::pair<double, int>;

// std::pair's operator< is the lexicographic (distance, id) order of the
// tie-breaking contract; all comparisons below use full pairs so equal
// distances resolve deterministically by lowest id.

/// Median-of-three pivot selection: places the median of a[lo], a[mid],
/// a[hi] at a[lo].
void median_of_three(Pair* a, int lo, int hi) {
  const int mid = lo + (hi - lo) / 2;
  if (a[mid] < a[lo]) std::swap(a[mid], a[lo]);
  if (a[hi] < a[lo]) std::swap(a[hi], a[lo]);
  if (a[mid] < a[hi]) std::swap(a[mid], a[hi]);
  std::swap(a[lo], a[hi]);
}

/// Hoare partition around pivot a[lo]; returns the final pivot slot.
int partition(Pair* a, int lo, int hi) {
  const Pair pivot = a[lo];
  int i = lo;
  int j = hi + 1;
  for (;;) {
    do {
      ++i;
    } while (i <= hi && a[i] < pivot);
    do {
      --j;
    } while (pivot < a[j]);
    if (i >= j) break;
    std::swap(a[i], a[j]);
  }
  std::swap(a[lo], a[j]);
  return j;
}

}  // namespace

std::pair<double, int> quickselect_kth(Pair* a, int n, int kth) {
  assert(n > 0 && kth >= 0 && kth < n);
  int lo = 0;
  int hi = n - 1;
  for (;;) {
    if (lo == hi) return a[lo];
    median_of_three(a, lo, hi);
    const int p = partition(a, lo, hi);
    if (kth == p) return a[p];
    if (kth < p) {
      hi = p - 1;
    } else {
      lo = p + 1;
    }
  }
}

void select_quick(const double* cand_dist, const int* cand_id, int n,
                  double* row_dist, int* row_id, int k,
                  SelectScratch& scratch) {
  // Concatenate the existing row with the candidates (paper §2.2: "first
  // concatenate the list with n candidates and find the new kth element").
  auto& buf = scratch.pairs;
  buf.clear();
  buf.reserve(static_cast<std::size_t>(n + k));
  for (int j = 0; j < k; ++j) buf.emplace_back(row_dist[j], row_id[j]);
  // Non-finite candidates are rejected up front: NaN is unordered and would
  // corrupt the partition invariants, and the contract keeps them out of
  // neighbor rows anyway.
  for (int j = 0; j < n; ++j) {
    if (std::isfinite(cand_dist[j])) buf.emplace_back(cand_dist[j], cand_id[j]);
  }

  quickselect_kth(buf.data(), static_cast<int>(buf.size()), k - 1);
  // buf[0..k) now holds the k smallest in arbitrary order: rebuild the heap.
  for (int j = 0; j < k; ++j) {
    row_dist[j] = buf[static_cast<std::size_t>(j)].first;
    row_id[j] = buf[static_cast<std::size_t>(j)].second;
  }
  heap::binary_build(row_dist, row_id, k);
}

namespace {

/// Bottom-up merge sort over pairs (ascending by distance), using `tmp` as
/// the auxiliary buffer (same length as the range).
void merge_sort_pairs(Pair* a, int n, Pair* tmp) {
  for (int width = 1; width < n; width *= 2) {
    for (int lo = 0; lo < n; lo += 2 * width) {
      const int mid = std::min(lo + width, n);
      const int hi = std::min(lo + 2 * width, n);
      int i = lo, j = mid, o = lo;
      while (i < mid && j < hi) {
        tmp[o++] = (a[j] < a[i]) ? a[j++] : a[i++];
      }
      while (i < mid) tmp[o++] = a[i++];
      while (j < hi) tmp[o++] = a[j++];
    }
    std::copy(tmp, tmp + n, a);
  }
}

}  // namespace

void select_merge(const double* cand_dist, const int* cand_id, int n,
                  double* row_dist, int* row_id, int k,
                  SelectScratch& scratch) {
  // Current list, sorted ascending — the running "first k" result.
  auto& buf = scratch.pairs;
  buf.clear();
  buf.resize(static_cast<std::size_t>(3 * k));
  Pair* best = buf.data();           // k slots: current best, sorted
  Pair* chunk = best + k;            // k slots: one candidate chunk
  Pair* tmp = chunk + k;             // k slots: merge-sort scratch

  for (int j = 0; j < k; ++j) best[j] = {row_dist[j], row_id[j]};
  merge_sort_pairs(best, k, tmp);

  // Process candidates in chunks of k: sort the chunk, then a single
  // truncated merge with `best` keeps the k smallest of both.
  for (int base = 0; base < n; base += k) {
    const int take = std::min(k, n - base);
    // Non-finite candidates are skipped (contract: they never enter a row).
    int len = 0;
    for (int j = 0; j < take; ++j) {
      if (std::isfinite(cand_dist[base + j])) {
        chunk[len++] = {cand_dist[base + j], cand_id[base + j]};
      }
    }
    merge_sort_pairs(chunk, len, tmp);
    // Truncated merge into tmp (first k survivors only).
    int i = 0, c = 0;
    for (int o = 0; o < k; ++o) {
      if (c < len && (i >= k || chunk[c] < best[i])) {
        tmp[o] = chunk[c++];
      } else {
        tmp[o] = best[i++];
      }
    }
    std::copy(tmp, tmp + k, best);
  }

  for (int j = 0; j < k; ++j) {
    row_dist[j] = best[j].first;
    row_id[j] = best[j].second;
  }
  heap::binary_build(row_dist, row_id, k);
}

void select_stl(const double* cand_dist, const int* cand_id, int n,
                double* row_dist, int* row_id, int k, SelectScratch& scratch) {
  // Reference implementation over std::*_heap, matching the "STL max heap"
  // baseline in the paper's experiments.
  auto& h = scratch.pairs;
  h.resize(static_cast<std::size_t>(k));
  for (int j = 0; j < k; ++j) h[static_cast<std::size_t>(j)] = {row_dist[j], row_id[j]};
  std::make_heap(h.begin(), h.end());
  for (int j = 0; j < n; ++j) {
    // Accept = strictly smaller in (distance, id) order and finite — the
    // same rule as heap::pair_accepts, so this baseline selection agrees
    // bitwise with the fused kernel on ties and non-finite candidates.
    const Pair c{cand_dist[j], cand_id[j]};
    if (c < h.front() && std::isfinite(c.first)) {
      std::pop_heap(h.begin(), h.end());
      h.back() = c;
      std::push_heap(h.begin(), h.end());
    }
  }
  for (int j = 0; j < k; ++j) {
    row_dist[j] = h[static_cast<std::size_t>(j)].first;
    row_id[j] = h[static_cast<std::size_t>(j)].second;
  }
}

}  // namespace gsknn
