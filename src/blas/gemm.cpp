#include "gsknn/blas/gemm.hpp"

#include <algorithm>
#include <cassert>

#include "gsknn/common/aligned.hpp"
#include "gsknn/common/arch.hpp"
#include "gsknn/common/threads.hpp"
#include "pack.hpp"
#include "ukernel.hpp"

namespace gsknn::blas {

namespace {

/// Scale C by beta (handles the k == 0 early-out and the alpha == 0 case).
template <typename T>
void scale_c(int m, int n, T beta, T* C, int ldc) {
  if (beta == T(1)) return;
  for (int j = 0; j < n; ++j) {
    T* cj = C + static_cast<long>(j) * ldc;
    if (beta == T(0)) {
      std::fill(cj, cj + m, T(0));
    } else {
      for (int i = 0; i < m; ++i) cj[i] *= beta;
    }
  }
}

/// Per-thread packed-A arena (Goto scheme: Bp is shared across threads of
/// the ic loop, Ap is private).
template <typename T>
struct Arena {
  AlignedBuffer<T> ap;
  AlignedBuffer<T> tile;  // mr×nr edge staging
};

template <typename T>
Arena<T>& arena() {
  thread_local Arena<T> a;
  return a;
}

template <typename T>
void gemm_impl(Trans transa, Trans transb, int m, int n, int k, T alpha,
               const T* A, int lda, const T* B, int ldb, T beta, T* C,
               int ldc) {
  assert(m >= 0 && n >= 0 && k >= 0);
  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == T(0)) {
    scale_c(m, n, beta, C, ldc);
    return;
  }

  const SimdLevel level = cpu_features().best_level();
  const UKernelT<T> uk = select_ukernel_t<T>(level);
  const BlockingParams bp = derive_blocking(uk.mr, uk.nr, sizeof(T));
  const UKernelFnT<T> ukr = uk.fn;
  const int tmr = uk.mr;
  const int tnr = uk.nr;
  const int kc = bp.dc;
  const int mc = bp.mc;
  const int nc = bp.nc;

  AlignedBuffer<T> bpanel(
      static_cast<std::size_t>(round_up(static_cast<std::size_t>(std::min(n, nc)), tnr)) *
      static_cast<std::size_t>(std::min(k, kc)));

  for (int jc = 0; jc < n; jc += nc) {                 // 6th loop
    const int nb = std::min(nc, n - jc);
    const int nb_pad = static_cast<int>(round_up(static_cast<std::size_t>(nb), tnr));
    for (int pc = 0; pc < k; pc += kc) {               // 5th loop
      const int kb = std::min(kc, k - pc);
      bpanel.reset(static_cast<std::size_t>(nb_pad) * kb);
      pack_b_rt(tnr, transb, B, ldb, pc, jc, kb, nb, bpanel.data());
      const T beta_eff = (pc == 0) ? beta : T(1);

#if defined(GSKNN_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
      for (int ic = 0; ic < m; ic += mc) {             // 4th loop
        const int mb = std::min(mc, m - ic);
        const int mb_pad = static_cast<int>(round_up(static_cast<std::size_t>(mb), tmr));
        Arena<T>& ar = arena<T>();
        ar.ap.reset(static_cast<std::size_t>(mb_pad) * kb);
        ar.tile.reset(static_cast<std::size_t>(kMaxMr) * kMaxNr);
        pack_a_rt(tmr, transa, A, lda, ic, pc, mb, kb, ar.ap.data());

        for (int jr = 0; jr < nb; jr += tnr) {         // 3rd loop
          const T* bs = bpanel.data() + static_cast<long>(jr) * kb;
          const int cols = std::min(tnr, nb - jr);
          for (int ir = 0; ir < mb; ir += tmr) {       // 2nd loop
            const T* as = ar.ap.data() + static_cast<long>(ir) * kb;
            const int rows = std::min(tmr, mb - ir);
            T* c = C + (ic + ir) + static_cast<long>(jc + jr) * ldc;
            if (rows == tmr && cols == tnr) {
              ukr(kb, as, bs, alpha, beta_eff, c, ldc);
            } else {
              // Edge tile: compute the full padded tile into staging, then
              // merge only the valid sub-block into C.
              T* t = ar.tile.data();
              ukr(kb, as, bs, alpha, T(0), t, tmr);
              for (int j = 0; j < cols; ++j) {
                for (int i = 0; i < rows; ++i) {
                  T& dst = c[i + static_cast<long>(j) * ldc];
                  dst = t[i + static_cast<long>(j) * tmr] +
                        (beta_eff == T(0) ? T(0) : beta_eff * dst);
                }
              }
            }
          }
        }
      }
    }
  }
}

template <typename T>
void gemm_naive_impl(Trans transa, Trans transb, int m, int n, int k, T alpha,
                     const T* A, int lda, const T* B, int ldb, T beta, T* C,
                     int ldc) {
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      T acc = T(0);
      for (int p = 0; p < k; ++p) {
        acc += op_a(transa, A, lda, i, p) * op_b(transb, B, ldb, p, j);
      }
      T& c = C[i + static_cast<long>(j) * ldc];
      c = alpha * acc + (beta == T(0) ? T(0) : beta * c);
    }
  }
}

}  // namespace

void dgemm(Trans transa, Trans transb, int m, int n, int k, double alpha,
           const double* A, int lda, const double* B, int ldb, double beta,
           double* C, int ldc) {
  gemm_impl<double>(transa, transb, m, n, k, alpha, A, lda, B, ldb, beta, C,
                    ldc);
}

void sgemm(Trans transa, Trans transb, int m, int n, int k, float alpha,
           const float* A, int lda, const float* B, int ldb, float beta,
           float* C, int ldc) {
  gemm_impl<float>(transa, transb, m, n, k, alpha, A, lda, B, ldb, beta, C,
                   ldc);
}

void dgemm_naive(Trans transa, Trans transb, int m, int n, int k, double alpha,
                 const double* A, int lda, const double* B, int ldb,
                 double beta, double* C, int ldc) {
  gemm_naive_impl<double>(transa, transb, m, n, k, alpha, A, lda, B, ldb,
                          beta, C, ldc);
}

void sgemm_naive(Trans transa, Trans transb, int m, int n, int k, float alpha,
                 const float* A, int lda, const float* B, int ldb, float beta,
                 float* C, int ldc) {
  gemm_naive_impl<float>(transa, transb, m, n, k, alpha, A, lda, B, ldb, beta,
                         C, ldc);
}

void row_sqnorms(Trans transa, int m, int k, const double* A, int lda,
                 double* out) {
  for (int i = 0; i < m; ++i) {
    double s = 0.0;
    for (int p = 0; p < k; ++p) {
      const double v = op_a(transa, A, lda, i, p);
      s += v * v;
    }
    out[i] = s;
  }
}

}  // namespace gsknn::blas
