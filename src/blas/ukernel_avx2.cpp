// AVX2+FMA 8×4 double micro-kernel.
//
// Register allocation: 8 YMM accumulators (two 4-row halves × 4 columns),
// 2 YMM for the current A sliver, 1 YMM for the broadcast B element — well
// under the 16 architectural YMM registers, leaving room for the compiler
// to software-pipeline the loads (the paper's "rank-dc update pipeline",
// §2.4). With FMA available there is no need for Ivy Bridge's shuffle
// choreography (paper Fig. 3): broadcast-FMA reaches the same port
// utilization with fewer instructions.
#include "ukernel.hpp"

#if defined(GSKNN_BUILD_AVX2)

#include <immintrin.h>

#include "gsknn/common/macros.hpp"

namespace gsknn::blas {

void ukernel_8x4_avx2(int kc, const double* GSKNN_RESTRICT Ap,
                      const double* GSKNN_RESTRICT Bp, double alpha,
                      double beta, double* GSKNN_RESTRICT C, int ldc) {
  __m256d c00 = _mm256_setzero_pd(), c10 = _mm256_setzero_pd();
  __m256d c01 = _mm256_setzero_pd(), c11 = _mm256_setzero_pd();
  __m256d c02 = _mm256_setzero_pd(), c12 = _mm256_setzero_pd();
  __m256d c03 = _mm256_setzero_pd(), c13 = _mm256_setzero_pd();

  const double* a = Ap;
  const double* b = Bp;
  for (int p = 0; p < kc; ++p) {
    const __m256d a0 = _mm256_load_pd(a);
    const __m256d a1 = _mm256_load_pd(a + 4);
    GSKNN_PREFETCH_R(a + 8 * kMr);

    __m256d bj = _mm256_broadcast_sd(b + 0);
    c00 = _mm256_fmadd_pd(a0, bj, c00);
    c10 = _mm256_fmadd_pd(a1, bj, c10);
    bj = _mm256_broadcast_sd(b + 1);
    c01 = _mm256_fmadd_pd(a0, bj, c01);
    c11 = _mm256_fmadd_pd(a1, bj, c11);
    bj = _mm256_broadcast_sd(b + 2);
    c02 = _mm256_fmadd_pd(a0, bj, c02);
    c12 = _mm256_fmadd_pd(a1, bj, c12);
    bj = _mm256_broadcast_sd(b + 3);
    c03 = _mm256_fmadd_pd(a0, bj, c03);
    c13 = _mm256_fmadd_pd(a1, bj, c13);

    a += kMr;
    b += kNr;
  }

  const __m256d va = _mm256_set1_pd(alpha);
  __m256d lo[kNr] = {c00, c01, c02, c03};
  __m256d hi[kNr] = {c10, c11, c12, c13};
  if (beta == 0.0) {
    for (int j = 0; j < kNr; ++j) {
      double* cj = C + static_cast<long>(j) * ldc;
      _mm256_storeu_pd(cj, _mm256_mul_pd(va, lo[j]));
      _mm256_storeu_pd(cj + 4, _mm256_mul_pd(va, hi[j]));
    }
  } else {
    const __m256d vb = _mm256_set1_pd(beta);
    for (int j = 0; j < kNr; ++j) {
      double* cj = C + static_cast<long>(j) * ldc;
      const __m256d old0 = _mm256_loadu_pd(cj);
      const __m256d old1 = _mm256_loadu_pd(cj + 4);
      _mm256_storeu_pd(cj, _mm256_fmadd_pd(va, lo[j], _mm256_mul_pd(vb, old0)));
      _mm256_storeu_pd(cj + 4,
                       _mm256_fmadd_pd(va, hi[j], _mm256_mul_pd(vb, old1)));
    }
  }
}


// Single-precision 8×8 kernel: one 8-wide ymm accumulator per column.
void ukernel_8x8_avx2_f32(int kc, const float* GSKNN_RESTRICT Ap,
                          const float* GSKNN_RESTRICT Bp, float alpha,
                          float beta, float* GSKNN_RESTRICT C, int ldc) {
  __m256 c0 = _mm256_setzero_ps(), c1 = _mm256_setzero_ps();
  __m256 c2 = _mm256_setzero_ps(), c3 = _mm256_setzero_ps();
  __m256 c4 = _mm256_setzero_ps(), c5 = _mm256_setzero_ps();
  __m256 c6 = _mm256_setzero_ps(), c7 = _mm256_setzero_ps();

  const float* a = Ap;
  const float* b = Bp;
  for (int p = 0; p < kc; ++p) {
    const __m256 av = _mm256_load_ps(a);
    GSKNN_PREFETCH_R(a + 64);
    c0 = _mm256_fmadd_ps(av, _mm256_broadcast_ss(b + 0), c0);
    c1 = _mm256_fmadd_ps(av, _mm256_broadcast_ss(b + 1), c1);
    c2 = _mm256_fmadd_ps(av, _mm256_broadcast_ss(b + 2), c2);
    c3 = _mm256_fmadd_ps(av, _mm256_broadcast_ss(b + 3), c3);
    c4 = _mm256_fmadd_ps(av, _mm256_broadcast_ss(b + 4), c4);
    c5 = _mm256_fmadd_ps(av, _mm256_broadcast_ss(b + 5), c5);
    c6 = _mm256_fmadd_ps(av, _mm256_broadcast_ss(b + 6), c6);
    c7 = _mm256_fmadd_ps(av, _mm256_broadcast_ss(b + 7), c7);
    a += 8;
    b += 8;
  }

  const __m256 va = _mm256_set1_ps(alpha);
  const auto writeout = [&](float* cj, __m256 acc) {
    if (beta == 0.0f) {
      _mm256_storeu_ps(cj, _mm256_mul_ps(va, acc));
    } else {
      const __m256 vb = _mm256_set1_ps(beta);
      const __m256 old = _mm256_loadu_ps(cj);
      _mm256_storeu_ps(cj, _mm256_fmadd_ps(va, acc, _mm256_mul_ps(vb, old)));
    }
  };
  writeout(C + 0L * ldc, c0);
  writeout(C + 1L * ldc, c1);
  writeout(C + 2L * ldc, c2);
  writeout(C + 3L * ldc, c3);
  writeout(C + 4L * ldc, c4);
  writeout(C + 5L * ldc, c5);
  writeout(C + 6L * ldc, c6);
  writeout(C + 7L * ldc, c7);
}

}  // namespace gsknn::blas

#endif  // GSKNN_BUILD_AVX2
