#include "gsknn/common/macros.hpp"
#include "ukernel.hpp"

namespace gsknn::blas {

namespace {

template <typename T>
void ukernel_8x4_scalar_impl(int kc, const T* GSKNN_RESTRICT Ap,
                             const T* GSKNN_RESTRICT Bp, T alpha, T beta,
                             T* GSKNN_RESTRICT C, int ldc) {
  T acc[kMr][kNr] = {};
  for (int p = 0; p < kc; ++p) {
    const T* a = Ap + static_cast<long>(p) * kMr;
    const T* b = Bp + static_cast<long>(p) * kNr;
    for (int j = 0; j < kNr; ++j) {
      const T bj = b[j];
      for (int i = 0; i < kMr; ++i) acc[i][j] += a[i] * bj;
    }
  }
  if (beta == T(0)) {
    for (int j = 0; j < kNr; ++j) {
      for (int i = 0; i < kMr; ++i) {
        C[i + static_cast<long>(j) * ldc] = alpha * acc[i][j];
      }
    }
  } else {
    for (int j = 0; j < kNr; ++j) {
      for (int i = 0; i < kMr; ++i) {
        T& c = C[i + static_cast<long>(j) * ldc];
        c = alpha * acc[i][j] + beta * c;
      }
    }
  }
}

}  // namespace

void ukernel_8x4_scalar(int kc, const double* Ap, const double* Bp,
                        double alpha, double beta, double* C, int ldc) {
  ukernel_8x4_scalar_impl<double>(kc, Ap, Bp, alpha, beta, C, ldc);
}

void ukernel_8x4_scalar_f32(int kc, const float* Ap, const float* Bp,
                            float alpha, float beta, float* C, int ldc) {
  ukernel_8x4_scalar_impl<float>(kc, Ap, Bp, alpha, beta, C, ldc);
}

UKernel select_ukernel(SimdLevel level) {
#if defined(GSKNN_BUILD_AVX512)
  if (level >= SimdLevel::kAvx512) return {ukernel_16x4_avx512, 16, 4};
#endif
#if defined(GSKNN_BUILD_AVX2)
  if (level >= SimdLevel::kAvx2) return {ukernel_8x4_avx2, kMr, kNr};
#else
  (void)level;
#endif
  return {ukernel_8x4_scalar, kMr, kNr};
}

UKernelT<float> select_ukernel_f32(SimdLevel level) {
#if defined(GSKNN_BUILD_AVX512)
  if (level >= SimdLevel::kAvx512) return {ukernel_16x8_avx512_f32, 16, 8};
#endif
#if defined(GSKNN_BUILD_AVX2)
  if (level >= SimdLevel::kAvx2) return {ukernel_8x8_avx2_f32, 8, 8};
#else
  (void)level;
#endif
  return {ukernel_8x4_scalar_f32, kMr, kNr};
}

}  // namespace gsknn::blas
