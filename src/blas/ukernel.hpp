// GEMM micro-kernel contract (internal).
//
// A micro-kernel computes one register-resident m_r × n_r tile:
//   tile(i, j) = Σ_{p<kc} Ap[p·mr + i] · Bp[p·nr + j]
// from zero, then writes  C := alpha·tile + beta·C  (beta == 0 means C is
// uninitialized and must be overwritten, never read).
//
// Ap/Bp are packed slivers: mr (resp. nr) contiguous elements per depth
// step, zero-padded at the edges by the packing routines so the kernel can
// always execute the full tile. Edge tiles in C are handled by the caller
// writing through a temporary. Tile geometry travels with the kernel in
// UKernelT so each (ISA, scalar) pair picks its own shape:
//   scalar    8×4 (double and float)
//   AVX2+FMA  8×4 double, 8×8 float
//   AVX-512F  16×4 double, 16×8 float
#pragma once

#include "gsknn/common/arch.hpp"

namespace gsknn::blas {

/// Tile of the scalar and AVX2-double kernels (mirrors the paper's 8×4).
inline constexpr int kMr = 8;
inline constexpr int kNr = 4;

/// Largest tile any kernel uses (edge-staging buffer size).
inline constexpr int kMaxMr = 16;
inline constexpr int kMaxNr = 8;

template <typename T>
using UKernelFnT = void (*)(int kc, const T* Ap, const T* Bp, T alpha, T beta,
                            T* C, int ldc);

using UKernelFn = UKernelFnT<double>;

/// A kernel plus its tile geometry.
template <typename T>
struct UKernelT {
  UKernelFnT<T> fn = nullptr;
  int mr = kMr;
  int nr = kNr;
};

using UKernel = UKernelT<double>;

/// Portable C++ kernels (always available), 8×4.
void ukernel_8x4_scalar(int kc, const double* Ap, const double* Bp,
                        double alpha, double beta, double* C, int ldc);
void ukernel_8x4_scalar_f32(int kc, const float* Ap, const float* Bp,
                            float alpha, float beta, float* C, int ldc);

#if defined(GSKNN_BUILD_AVX2)
/// AVX2+FMA kernels: 8×4 double, 8×8 float.
void ukernel_8x4_avx2(int kc, const double* Ap, const double* Bp, double alpha,
                      double beta, double* C, int ldc);
void ukernel_8x8_avx2_f32(int kc, const float* Ap, const float* Bp,
                          float alpha, float beta, float* C, int ldc);
#endif

#if defined(GSKNN_BUILD_AVX512)
/// AVX-512F kernels: 16×4 double, 16×8 float.
void ukernel_16x4_avx512(int kc, const double* Ap, const double* Bp,
                         double alpha, double beta, double* C, int ldc);
void ukernel_16x8_avx512_f32(int kc, const float* Ap, const float* Bp,
                             float alpha, float beta, float* C, int ldc);
#endif

/// Pick the best kernel for `level`.
UKernel select_ukernel(SimdLevel level);
UKernelT<float> select_ukernel_f32(SimdLevel level);

template <typename T>
UKernelT<T> select_ukernel_t(SimdLevel level);

template <>
inline UKernelT<double> select_ukernel_t<double>(SimdLevel level) {
  return select_ukernel(level);
}

template <>
inline UKernelT<float> select_ukernel_t<float>(SimdLevel level) {
  return select_ukernel_f32(level);
}

}  // namespace gsknn::blas
