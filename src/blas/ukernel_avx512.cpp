// AVX-512F 16×4 double GEMM micro-kernel: eight zmm accumulators (two
// 8-row halves per column), broadcast-FMA schema identical to the AVX2
// kernel with twice the row count.
#include "ukernel.hpp"

#if defined(GSKNN_BUILD_AVX512)

#include <immintrin.h>

#include "gsknn/common/macros.hpp"

namespace gsknn::blas {

void ukernel_16x4_avx512(int kc, const double* GSKNN_RESTRICT Ap,
                         const double* GSKNN_RESTRICT Bp, double alpha,
                         double beta, double* GSKNN_RESTRICT C, int ldc) {
  __m512d a0 = _mm512_setzero_pd(), b0 = _mm512_setzero_pd();
  __m512d a1 = _mm512_setzero_pd(), b1 = _mm512_setzero_pd();
  __m512d a2 = _mm512_setzero_pd(), b2 = _mm512_setzero_pd();
  __m512d a3 = _mm512_setzero_pd(), b3 = _mm512_setzero_pd();

  const double* ap = Ap;
  const double* bp = Bp;
  constexpr int mr = 16;
  for (int p = 0; p < kc; ++p) {
    const __m512d qa = _mm512_load_pd(ap);
    const __m512d qb = _mm512_load_pd(ap + 8);
    GSKNN_PREFETCH_R(ap + 8 * mr);
    __m512d rb = _mm512_set1_pd(bp[0]);
    a0 = _mm512_fmadd_pd(qa, rb, a0);
    b0 = _mm512_fmadd_pd(qb, rb, b0);
    rb = _mm512_set1_pd(bp[1]);
    a1 = _mm512_fmadd_pd(qa, rb, a1);
    b1 = _mm512_fmadd_pd(qb, rb, b1);
    rb = _mm512_set1_pd(bp[2]);
    a2 = _mm512_fmadd_pd(qa, rb, a2);
    b2 = _mm512_fmadd_pd(qb, rb, b2);
    rb = _mm512_set1_pd(bp[3]);
    a3 = _mm512_fmadd_pd(qa, rb, a3);
    b3 = _mm512_fmadd_pd(qb, rb, b3);
    ap += mr;
    bp += 4;
  }

  const __m512d va = _mm512_set1_pd(alpha);
  if (beta == 0.0) {
    _mm512_storeu_pd(C + 0L * ldc, _mm512_mul_pd(va, a0));
    _mm512_storeu_pd(C + 0L * ldc + 8, _mm512_mul_pd(va, b0));
    _mm512_storeu_pd(C + 1L * ldc, _mm512_mul_pd(va, a1));
    _mm512_storeu_pd(C + 1L * ldc + 8, _mm512_mul_pd(va, b1));
    _mm512_storeu_pd(C + 2L * ldc, _mm512_mul_pd(va, a2));
    _mm512_storeu_pd(C + 2L * ldc + 8, _mm512_mul_pd(va, b2));
    _mm512_storeu_pd(C + 3L * ldc, _mm512_mul_pd(va, a3));
    _mm512_storeu_pd(C + 3L * ldc + 8, _mm512_mul_pd(va, b3));
  } else {
    const __m512d vb = _mm512_set1_pd(beta);
    const auto merge = [&](double* c, __m512d acc) {
      const __m512d old = _mm512_loadu_pd(c);
      _mm512_storeu_pd(c, _mm512_fmadd_pd(va, acc, _mm512_mul_pd(vb, old)));
    };
    merge(C + 0L * ldc, a0);
    merge(C + 0L * ldc + 8, b0);
    merge(C + 1L * ldc, a1);
    merge(C + 1L * ldc + 8, b1);
    merge(C + 2L * ldc, a2);
    merge(C + 2L * ldc + 8, b2);
    merge(C + 3L * ldc, a3);
    merge(C + 3L * ldc + 8, b3);
  }
}


// Single-precision 16×8 kernel: one 16-wide zmm accumulator per column.
void ukernel_16x8_avx512_f32(int kc, const float* GSKNN_RESTRICT Ap,
                             const float* GSKNN_RESTRICT Bp, float alpha,
                             float beta, float* GSKNN_RESTRICT C, int ldc) {
  __m512 c0 = _mm512_setzero_ps(), c1 = _mm512_setzero_ps();
  __m512 c2 = _mm512_setzero_ps(), c3 = _mm512_setzero_ps();
  __m512 c4 = _mm512_setzero_ps(), c5 = _mm512_setzero_ps();
  __m512 c6 = _mm512_setzero_ps(), c7 = _mm512_setzero_ps();

  const float* a = Ap;
  const float* b = Bp;
  for (int p = 0; p < kc; ++p) {
    const __m512 av = _mm512_load_ps(a);
    GSKNN_PREFETCH_R(a + 128);
    c0 = _mm512_fmadd_ps(av, _mm512_set1_ps(b[0]), c0);
    c1 = _mm512_fmadd_ps(av, _mm512_set1_ps(b[1]), c1);
    c2 = _mm512_fmadd_ps(av, _mm512_set1_ps(b[2]), c2);
    c3 = _mm512_fmadd_ps(av, _mm512_set1_ps(b[3]), c3);
    c4 = _mm512_fmadd_ps(av, _mm512_set1_ps(b[4]), c4);
    c5 = _mm512_fmadd_ps(av, _mm512_set1_ps(b[5]), c5);
    c6 = _mm512_fmadd_ps(av, _mm512_set1_ps(b[6]), c6);
    c7 = _mm512_fmadd_ps(av, _mm512_set1_ps(b[7]), c7);
    a += 16;
    b += 8;
  }

  const __m512 va = _mm512_set1_ps(alpha);
  const auto writeout = [&](float* cj, __m512 acc) {
    if (beta == 0.0f) {
      _mm512_storeu_ps(cj, _mm512_mul_ps(va, acc));
    } else {
      const __m512 vb = _mm512_set1_ps(beta);
      const __m512 old = _mm512_loadu_ps(cj);
      _mm512_storeu_ps(cj, _mm512_fmadd_ps(va, acc, _mm512_mul_ps(vb, old)));
    }
  };
  writeout(C + 0L * ldc, c0);
  writeout(C + 1L * ldc, c1);
  writeout(C + 2L * ldc, c2);
  writeout(C + 3L * ldc, c3);
  writeout(C + 4L * ldc, c4);
  writeout(C + 5L * ldc, c5);
  writeout(C + 6L * ldc, c6);
  writeout(C + 7L * ldc, c7);
}

}  // namespace gsknn::blas

#endif  // GSKNN_BUILD_AVX512
