// Packing routines for the GEMM substrate (internal).
//
// pack_a copies an mb × kb block of op(A) into "MR-sliver" format: for each
// group of MR consecutive rows, kb depth-steps of MR contiguous elements.
// Rows beyond mb (the last partial sliver) are zero-filled so the
// micro-kernel always runs a full tile. pack_b is the mirror image for
// NR-slivers of op(B). Sliver widths are template parameters because they
// follow the selected micro-kernel's tile geometry.
#pragma once

#include <cassert>
#include <cstring>

#include "gsknn/common/macros.hpp"
#include "gsknn/blas/gemm.hpp"

namespace gsknn::blas {

/// op(A)(i, p) for the m×k operand.
template <typename T>
GSKNN_ALWAYS_INLINE T op_a(Trans t, const T* A, int lda, int i,
                           int p) {
  return t == Trans::kNo ? A[i + static_cast<long>(p) * lda]
                         : A[p + static_cast<long>(i) * lda];
}

/// Pack rows [i0, i0+mb) × depth [p0, p0+kb) of op(A) into Ap
/// (ceil(mb/MR)·kb·MR doubles).
template <int MR, typename T>
void pack_a(Trans transa, const T* A, int lda, int i0, int p0, int mb,
            int kb, T* GSKNN_RESTRICT Ap) {
  for (int ir = 0; ir < mb; ir += MR) {
    const int rows = (mb - ir < MR) ? mb - ir : MR;
    T* dst = Ap + static_cast<long>(ir) * kb;
    if (transa == Trans::kNo && rows == MR) {
      // Columns of A are contiguous in memory only along i; copy per depth.
      const T* src = A + (i0 + ir) + static_cast<long>(p0) * lda;
      for (int p = 0; p < kb; ++p) {
        std::memcpy(dst + static_cast<long>(p) * MR,
                    src + static_cast<long>(p) * lda, sizeof(T) * MR);
      }
    } else {
      for (int p = 0; p < kb; ++p) {
        for (int i = 0; i < rows; ++i) {
          dst[static_cast<long>(p) * MR + i] =
              op_a(transa, A, lda, i0 + ir + i, p0 + p);
        }
        for (int i = rows; i < MR; ++i) {
          dst[static_cast<long>(p) * MR + i] = T(0);
        }
      }
    }
  }
}

/// op(B)(p, j) for the k×n operand.
template <typename T>
GSKNN_ALWAYS_INLINE T op_b(Trans t, const T* B, int ldb, int p,
                           int j) {
  return t == Trans::kNo ? B[p + static_cast<long>(j) * ldb]
                         : B[j + static_cast<long>(p) * ldb];
}

/// Pack depth [p0, p0+kb) × cols [j0, j0+nb) of op(B) into Bp
/// (ceil(nb/NR)·kb·NR doubles).
template <int NR, typename T>
void pack_b(Trans transb, const T* B, int ldb, int p0, int j0, int kb,
            int nb, T* GSKNN_RESTRICT Bp) {
  for (int jr = 0; jr < nb; jr += NR) {
    const int cols = (nb - jr < NR) ? nb - jr : NR;
    T* dst = Bp + static_cast<long>(jr) * kb;
    for (int p = 0; p < kb; ++p) {
      for (int j = 0; j < cols; ++j) {
        dst[static_cast<long>(p) * NR + j] =
            op_b(transb, B, ldb, p0 + p, j0 + jr + j);
      }
      for (int j = cols; j < NR; ++j) {
        dst[static_cast<long>(p) * NR + j] = T(0);
      }
    }
  }
}

/// Runtime-sliver dispatchers for the tile widths that exist.
template <typename T>
inline void pack_a_rt(int MR, Trans transa, const T* A, int lda, int i0,
                      int p0, int mb, int kb, T* Ap) {
  switch (MR) {
    case 8:
      pack_a<8>(transa, A, lda, i0, p0, mb, kb, Ap);
      return;
    case 16:
      pack_a<16>(transa, A, lda, i0, p0, mb, kb, Ap);
      return;
    default:
      assert(false && "unsupported MR");
  }
}

template <typename T>
inline void pack_b_rt(int NR, Trans transb, const T* B, int ldb, int p0,
                      int j0, int kb, int nb, T* Bp) {
  switch (NR) {
    case 4:
      pack_b<4>(transb, B, ldb, p0, j0, kb, nb, Bp);
      return;
    case 8:
      pack_b<8>(transb, B, ldb, p0, j0, kb, nb, Bp);
      return;
    default:
      assert(false && "unsupported NR");
  }
}

}  // namespace gsknn::blas
