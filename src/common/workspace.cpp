// GSKNN_MAX_WORKSPACE parsing (see gsknn/common/workspace.hpp).
#include "gsknn/common/workspace.hpp"

#include <cctype>
#include <cstdlib>

namespace gsknn {

namespace {

std::size_t parse_bytes(const char* e) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(e, &end, 10);
  if (end == e) return 0;  // malformed -> no cap
  unsigned long long mult = 1;
  switch (std::toupper(static_cast<unsigned char>(*end))) {
    case 'K':
      mult = 1024ull;
      break;
    case 'M':
      mult = 1024ull * 1024;
      break;
    case 'G':
      mult = 1024ull * 1024 * 1024;
      break;
    default:
      break;
  }
  if (mult != 1 && v > SIZE_MAX / mult) return SIZE_MAX;
  return static_cast<std::size_t>(v * mult);
}

}  // namespace

std::size_t max_workspace_env() {
  static const std::size_t cap = [] {
    const char* e = std::getenv("GSKNN_MAX_WORKSPACE");
    return (e != nullptr && e[0] != '\0') ? parse_bytes(e) : std::size_t{0};
  }();
  return cap;
}

}  // namespace gsknn
