#include "gsknn/common/arch.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "gsknn/common/macros.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#define GSKNN_HAS_CPUID 1
#endif

namespace gsknn {
namespace {

CpuFeatures detect_features() {
  CpuFeatures f;
#if defined(GSKNN_HAS_CPUID)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
    f.sse2 = (edx >> 26) & 1u;
    f.avx = (ecx >> 28) & 1u;
    f.fma = (ecx >> 12) & 1u;
  }
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    f.avx2 = (ebx >> 5) & 1u;
    f.avx512f = (ebx >> 16) & 1u;
  }
#endif
  return f;
}

/// Read one sysfs cache file; returns 0 on failure.
std::size_t read_sysfs_cache_kib(const char* path) {
  std::ifstream in(path);
  if (!in) return 0;
  std::string tok;
  in >> tok;
  if (tok.empty()) return 0;
  // Format is e.g. "32K", "256K", "25344K".
  std::size_t val = 0;
  std::size_t i = 0;
  while (i < tok.size() && tok[i] >= '0' && tok[i] <= '9') {
    val = val * 10 + static_cast<std::size_t>(tok[i] - '0');
    ++i;
  }
  if (i < tok.size() && (tok[i] == 'K' || tok[i] == 'k')) return val * 1024;
  if (i < tok.size() && (tok[i] == 'M' || tok[i] == 'm')) return val * 1024 * 1024;
  return val;
}

CacheInfo detect_caches() {
  CacheInfo c;  // default-constructed fallbacks
  struct Probe {
    const char* size;
    const char* level;
    const char* type;
  };
  // cpu0's cache indices: index0..index3 typically L1d, L1i, L2, L3.
  for (int idx = 0; idx < 6; ++idx) {
    std::ostringstream base;
    base << "/sys/devices/system/cpu/cpu0/cache/index" << idx << "/";
    std::ifstream lvl(base.str() + "level");
    std::ifstream typ(base.str() + "type");
    int level = 0;
    std::string type;
    if (!(lvl >> level) || !(typ >> type)) continue;
    const std::size_t bytes = read_sysfs_cache_kib((base.str() + "size").c_str());
    if (bytes == 0) continue;
    if (level == 1 && type == "Data") c.l1d = bytes;
    if (level == 2 && (type == "Unified" || type == "Data")) c.l2 = bytes;
    if (level == 3 && (type == "Unified" || type == "Data")) c.l3 = bytes;
  }
  return c;
}

}  // namespace

namespace {

/// GSKNN_MAX_SIMD environment cap (evaluated once).
SimdLevel max_simd_cap() {
  static const SimdLevel cap = [] {
    const char* e = std::getenv("GSKNN_MAX_SIMD");
    if (e == nullptr) return SimdLevel::kAvx512;
    const std::string s(e);
    if (s == "scalar") return SimdLevel::kScalar;
    if (s == "avx2") return SimdLevel::kAvx2;
    return SimdLevel::kAvx512;
  }();
  return cap;
}

}  // namespace

SimdLevel CpuFeatures::best_level() const {
  if (force_scalar()) return SimdLevel::kScalar;
  const SimdLevel cap = max_simd_cap();
#if defined(GSKNN_BUILD_AVX512)
  if (avx512f && fma && cap >= SimdLevel::kAvx512) return SimdLevel::kAvx512;
#endif
#if defined(GSKNN_BUILD_AVX2)
  if (avx2 && fma && cap >= SimdLevel::kAvx2) return SimdLevel::kAvx2;
#endif
  return SimdLevel::kScalar;
}

const CpuFeatures& cpu_features() {
  static const CpuFeatures f = detect_features();
  return f;
}

const CacheInfo& cache_info() {
  static const CacheInfo c = detect_caches();
  return c;
}

const PrefetchParams& prefetch_params() {
  static const PrefetchParams pp = [] {
    PrefetchParams p;
    const char* e = std::getenv("GSKNN_PREFETCH");
    if (e != nullptr && e[0] == '0') {
      p.enabled = false;
      return p;
    }
    // One sliver group of lookahead for the pack gather: a line's worth of
    // points (8 with 64-byte lines and double coordinates) is enough to hide
    // the scattered source-row latency behind the current group's transpose
    // without thrashing the L1 fill buffers.
    const CacheInfo& c = cache_info();
    const int line_doubles =
        static_cast<int>(c.line / sizeof(double));  // 8 on every x86
    p.pack_points = std::max(4, line_doubles);
    return p;
  }();
  return pp;
}

bool force_scalar() {
  static const bool v = [] {
    const char* e = std::getenv("GSKNN_FORCE_SCALAR");
    return e != nullptr && e[0] == '1';
  }();
  return v;
}

BlockingParams derive_blocking(int mr, int nr, int elem_bytes) {
  const CacheInfo& c = cache_info();
  BlockingParams b;
  b.mr = mr;
  b.nr = nr;

  // d_c: (mr + nr) * dc elements ~ 3/4 of L1 (§2.4), rounded to a multiple
  // of 8 to keep the depth loop unrolled cleanly.
  const std::size_t l1_elems = c.l1d / static_cast<std::size_t>(elem_bytes);
  std::size_t dc = (3 * l1_elems / 4) / static_cast<std::size_t>(mr + nr);
  dc = std::max<std::size_t>(32, dc - dc % 8);
  b.dc = static_cast<int>(std::min<std::size_t>(dc, 512));

  // m_c: packed Qc (mc x dc elements) ~ 3/4 of L2, rounded down to mr.
  const std::size_t l2_elems = c.l2 / static_cast<std::size_t>(elem_bytes);
  std::size_t mc = (3 * l2_elems / 4) / static_cast<std::size_t>(b.dc);
  mc = std::max<std::size_t>(static_cast<std::size_t>(mr),
                             mc - mc % static_cast<std::size_t>(mr));
  b.mc = static_cast<int>(std::min<std::size_t>(mc, 2048));

  // n_c: packed Rc (dc x nc elements) ~ 1/2 of L3, rounded down to nr.
  const std::size_t l3_elems = c.l3 / static_cast<std::size_t>(elem_bytes);
  std::size_t nc = (l3_elems / 2) / static_cast<std::size_t>(b.dc);
  nc = std::max<std::size_t>(static_cast<std::size_t>(nr),
                             nc - nc % static_cast<std::size_t>(nr));
  b.nc = static_cast<int>(std::min<std::size_t>(nc, 8192));
  return b;
}

BlockingParams default_blocking(SimdLevel level) {
  // Register tile, per micro-kernel family: scalar and AVX2+FMA use 8×4
  // doubles (mirroring the paper's mr=8, nr=4 on AVX); AVX-512 doubles the
  // row count to 16×4 (two zmm rows per column, eight independent FMA
  // chains — enough to cover the 4-cycle FMA latency on two ports).
  return derive_blocking(level == SimdLevel::kAvx512 ? 16 : 8, 4,
                         sizeof(double));
}

std::string arch_summary() {
  const CpuFeatures& f = cpu_features();
  const CacheInfo& c = cache_info();
  const BlockingParams b = default_blocking(f.best_level());
  const char* simd_name = "scalar";
  if (f.best_level() == SimdLevel::kAvx2) simd_name = "avx2+fma";
  if (f.best_level() == SimdLevel::kAvx512) simd_name = "avx512f";
  std::ostringstream os;
  os << "simd=" << simd_name
     << " caches(L1d/L2/L3)=" << c.l1d / 1024 << "K/" << c.l2 / 1024 << "K/"
     << c.l3 / 1024 << "K"
     << " blocking(mr,nr,dc,mc,nc)=(" << b.mr << "," << b.nr << "," << b.dc
     << "," << b.mc << "," << b.nc << ")";
  return os.str();
}

}  // namespace gsknn
