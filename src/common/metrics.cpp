// Aggregate metrics registry (see include/gsknn/common/metrics.hpp).
#include "gsknn/common/metrics.hpp"

#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace gsknn::metrics {

namespace {

const char* const kEntryPointNames[kEntryPointCount] = {
    "kernel_f64", "kernel_f32",  "parallel_refs", "batch",
    "gemm_baseline", "single_loop", "rkd_forest",  "lsh",
    "serve_interactive", "serve_bulk",
};

// Mirrors gsknn::status_name() (src/core/validate.cpp); the parity is
// pinned by tests/common/test_metrics.cpp.
const char* const kStatusLabels[kStatusCount] = {
    "ok",          "invalid_argument",   "bad_index",
    "bad_config",  "non_finite",         "unsupported",
    "internal",    "resource_exhausted", "deadline_exceeded",
    "cancelled",   "stale",
};

const char* const kCounterNames[kCounterCount] = {
    "workspace_retiled_calls", "workspace_retile_steps", "variant_demotions",
    "trace_spans_dropped",     "pmu_multiplexed_reads",  "pack_hits",
    "pack_misses",             "pack_evictions",         "cache_bytes",
    "serve_enqueued",          "serve_fused_calls",      "serve_fused_queries",
    "serve_cancelled",         "serve_expired",          "serve_shed_predictive",
    "serve_doomed_evicted",    "serve_watchdog_fires",   "serve_breaker_open",
};

// Serving health gauge (metrics.hpp set_serve_health). One relaxed word:
// the serving runtime stores transitions, scrapes read it into snapshots.
std::atomic<int> g_serve_health{0};

const char* const kShapeDims[4] = {"m", "n", "d", "k"};

/// One thread's accumulator. All cells are relaxed atomics so concurrent
/// snapshot()/reset() reads and writes are defined; the owning thread
/// updates them with plain load+add+store (bump below), never a
/// lock-prefixed RMW.
struct alignas(64) Shard {
  std::atomic<std::uint64_t> calls[kEntryPointCount][kStatusCount];
  std::atomic<std::uint64_t> latency[kEntryPointCount][kHistBuckets];
  std::atomic<std::uint64_t> latency_sum_ns[kEntryPointCount];
  std::atomic<std::uint64_t> shape[4][kHistBuckets];
  std::atomic<std::uint64_t> shape_sum[4];
  std::atomic<std::uint64_t> drift[2][kHistBuckets];
  std::atomic<std::int64_t> drift_sum_millilog2[2];
  std::atomic<std::uint64_t> counters[kCounterCount];
  // Rolling-window ring (see metrics.hpp kWindowBuckets). win_epoch[i] is
  // the absolute wall second slot i currently holds; the slot's arrays are
  // re-zeroed by the recording thread when its second moves on.
  std::atomic<std::uint64_t> win_epoch[kWindowBuckets];
  std::atomic<std::uint64_t> win_status[kWindowBuckets][kStatusCount];
  std::atomic<std::uint64_t> win_latency[kWindowBuckets][kHistBuckets];
  std::atomic<std::uint64_t> win_latency_sum_ns[kWindowBuckets];
  std::atomic<std::uint64_t> win_drift_count[kWindowBuckets];
  std::atomic<std::int64_t> win_drift_sum_millilog2[kWindowBuckets];
};

// Fixed pool: ~8 KB per shard, claimed one per recording thread. Threads
// beyond the pool share the extra overflow shard (index kNumShards) using
// real fetch_add, so nothing is lost — only those rare threads pay for
// contended increments.
constexpr int kNumShards = 32;
Shard g_shards[kNumShards + 1];
std::atomic<int> g_next_shard{0};

struct ShardRef {
  Shard* shard;
  bool shared;  ///< true for the overflow shard: use fetch_add
};

ShardRef claim_shard() {
  const int i = g_next_shard.fetch_add(1, std::memory_order_relaxed);
  if (i < kNumShards) return {&g_shards[i], false};
  return {&g_shards[kNumShards], true};
}

ShardRef& my_shard() {
  thread_local ShardRef ref = claim_shard();
  return ref;
}

inline void bump(std::atomic<std::uint64_t>& cell, std::uint64_t v,
                 bool shared) {
  if (shared) {
    cell.fetch_add(v, std::memory_order_relaxed);
  } else {
    cell.store(cell.load(std::memory_order_relaxed) + v,
               std::memory_order_relaxed);
  }
}

inline void bump_signed(std::atomic<std::int64_t>& cell, std::int64_t v,
                        bool shared) {
  if (shared) {
    cell.fetch_add(v, std::memory_order_relaxed);
  } else {
    cell.store(cell.load(std::memory_order_relaxed) + v,
               std::memory_order_relaxed);
  }
}

bool initial_enabled() {
  const char* e = std::getenv("GSKNN_METRICS");
  return e == nullptr || e[0] != '0';
}

std::atomic<bool> g_enabled{initial_enabled()};

void zero_window_slot(Shard& s, int slot) {
  for (int st = 0; st < kStatusCount; ++st) {
    s.win_status[slot][st].store(0, std::memory_order_relaxed);
  }
  for (int b = 0; b < kHistBuckets; ++b) {
    s.win_latency[slot][b].store(0, std::memory_order_relaxed);
  }
  s.win_latency_sum_ns[slot].store(0, std::memory_order_relaxed);
  s.win_drift_count[slot].store(0, std::memory_order_relaxed);
  s.win_drift_sum_millilog2[slot].store(0, std::memory_order_relaxed);
}

/// Make `slot` of shard `s` hold wall-second `sec`, re-zeroing it if it
/// held an older second. Owned shards do this with plain stores. On the
/// shared overflow shard a CAS elects one zeroing thread; a concurrent
/// bump may land while the winner zeroes — an acceptable (counted-sample)
/// loss on an already contended fallback path, same scrape-race contract
/// as snapshot()/reset().
inline void rotate_window(Shard& s, int slot, std::uint64_t sec,
                          bool shared) {
  std::uint64_t held = s.win_epoch[slot].load(std::memory_order_relaxed);
  if (held == sec) return;
  if (held > sec) return;  // another thread already advanced past us
  if (shared) {
    if (!s.win_epoch[slot].compare_exchange_strong(
            held, sec, std::memory_order_relaxed)) {
      return;
    }
    zero_window_slot(s, slot);
  } else {
    zero_window_slot(s, slot);
    s.win_epoch[slot].store(sec, std::memory_order_relaxed);
  }
}

// ---- tiny JSON/text builders (snprintf into std::string, the telemetry
// serializer idiom — no allocation surprises, no iostreams) ----------------

void append_fmt(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

void append_bucket_array(std::string& out, const std::uint64_t* b) {
  out += '[';
  for (int i = 0; i < kHistBuckets; ++i) {
    append_fmt(out, "%s%llu", i == 0 ? "" : ",",
               static_cast<unsigned long long>(b[i]));
  }
  out += ']';
}

std::uint64_t sum_buckets(const std::uint64_t* b) {
  std::uint64_t total = 0;
  for (int i = 0; i < kHistBuckets; ++i) total += b[i];
  return total;
}

/// Emit one Prometheus histogram (TYPE line, cumulative buckets, +Inf,
/// _sum, _count). `le_of(i)` renders the bucket-i upper edge.
template <typename LeFn>
void prom_histogram(std::string& out, const char* family, const char* label,
                    const char* label_value, const std::uint64_t* buckets,
                    double sum, LeFn&& le_of, bool first_series) {
  if (first_series) {
    append_fmt(out, "# TYPE %s histogram\n", family);
  }
  std::uint64_t cum = 0;
  for (int i = 0; i < kHistBuckets; ++i) {
    cum += buckets[i];
    append_fmt(out, "%s_bucket{%s=\"%s\",le=\"%s\"} %llu\n", family, label,
               label_value, le_of(i).c_str(),
               static_cast<unsigned long long>(cum));
  }
  append_fmt(out, "%s_bucket{%s=\"%s\",le=\"+Inf\"} %llu\n", family, label,
             label_value, static_cast<unsigned long long>(cum));
  append_fmt(out, "%s_sum{%s=\"%s\"} %.9g\n", family, label, label_value,
             sum);
  append_fmt(out, "%s_count{%s=\"%s\"} %llu\n", family, label, label_value,
             static_cast<unsigned long long>(cum));
}

std::string le_number(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

const char* entry_point_name(EntryPoint ep) {
  const int i = static_cast<int>(ep);
  return (i >= 0 && i < kEntryPointCount) ? kEntryPointNames[i] : "?";
}

const char* status_label(int status) {
  return (status >= 0 && status < kStatusCount) ? kStatusLabels[status]
                                                : "unknown";
}

const char* counter_name(Counter c) {
  const int i = static_cast<int>(c);
  return (i >= 0 && i < kCounterCount) ? kCounterNames[i] : "?";
}

int bucket_index(std::uint64_t v) {
  if (v <= 1) return 0;
  return std::bit_width(v) - 1;
}

std::uint64_t bucket_limit(int i) {
  if (i >= kHistBuckets - 1) return UINT64_MAX;
  return std::uint64_t{1} << (i + 1);
}

int drift_bucket(double predicted_seconds, double measured_seconds) {
  if (!(predicted_seconds > 0.0) || !(measured_seconds > 0.0)) return -1;
  const double steps =
      kDriftBucketsPerLog2 * std::log2(measured_seconds / predicted_seconds);
  const long idx = kDriftCenter + std::lround(steps);
  if (idx < 0) return 0;
  if (idx >= kHistBuckets) return kHistBuckets - 1;
  return static_cast<int>(idx);
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

void record_call(EntryPoint ep, int status, std::uint64_t latency_ns, int m,
                 int n, int d, int k) {
  record_call_at(now_ns(), ep, status, latency_ns, m, n, d, k);
}

void record_call_at(std::uint64_t now, EntryPoint ep, int status,
                    std::uint64_t latency_ns, int m, int n, int d, int k) {
  if (!enabled()) return;
  const int e = static_cast<int>(ep);
  if (e < 0 || e >= kEntryPointCount) return;
  if (status < 0 || status >= kStatusCount) return;
  ShardRef& ref = my_shard();
  Shard& s = *ref.shard;
  const bool sh = ref.shared;
  bump(s.calls[e][status], 1, sh);
  const int lb = bucket_index(latency_ns);
  bump(s.latency[e][lb], 1, sh);
  bump(s.latency_sum_ns[e], latency_ns, sh);
  const int dims[4] = {m, n, d, k};
  for (int a = 0; a < 4; ++a) {
    const std::uint64_t v =
        dims[a] > 0 ? static_cast<std::uint64_t>(dims[a]) : 0;
    bump(s.shape[a][bucket_index(v)], 1, sh);
    bump(s.shape_sum[a], v, sh);
  }
  // Rolling window: the slot for this wall second.
  const std::uint64_t sec = now / 1000000000u;
  const int slot = static_cast<int>(sec % kWindowBuckets);
  rotate_window(s, slot, sec, sh);
  bump(s.win_status[slot][status], 1, sh);
  bump(s.win_latency[slot][lb], 1, sh);
  bump(s.win_latency_sum_ns[slot], latency_ns, sh);
}

void record_drift(bool f32, double predicted_seconds,
                  double measured_seconds) {
  record_drift_at(now_ns(), f32, predicted_seconds, measured_seconds);
}

void record_drift_at(std::uint64_t now, bool f32, double predicted_seconds,
                     double measured_seconds) {
  if (!enabled()) return;
  const int b = drift_bucket(predicted_seconds, measured_seconds);
  if (b < 0) return;
  ShardRef& ref = my_shard();
  Shard& s = *ref.shard;
  const int p = f32 ? 1 : 0;
  bump(s.drift[p][b], 1, ref.shared);
  const double millilog2 =
      1000.0 * std::log2(measured_seconds / predicted_seconds);
  const std::int64_t ml2 =
      static_cast<std::int64_t>(std::llround(millilog2));
  bump_signed(s.drift_sum_millilog2[p], ml2, ref.shared);
  const std::uint64_t sec = now / 1000000000u;
  const int slot = static_cast<int>(sec % kWindowBuckets);
  rotate_window(s, slot, sec, ref.shared);
  bump(s.win_drift_count[slot], 1, ref.shared);
  bump_signed(s.win_drift_sum_millilog2[slot], ml2, ref.shared);
}

void add_counter(Counter c, std::uint64_t v) {
  if (!enabled()) return;
  const int i = static_cast<int>(c);
  if (i < 0 || i >= kCounterCount) return;
  ShardRef& ref = my_shard();
  bump(ref.shard->counters[i], v, ref.shared);
}

void set_serve_health(int state) {
  if (state < 0) state = 0;
  if (state > 2) state = 2;
  g_serve_health.store(state, std::memory_order_relaxed);
}

int serve_health() {
  return g_serve_health.load(std::memory_order_relaxed);
}

const Slo& slo_from_env() {
  static const Slo slo = [] {
    Slo s;
    if (const char* e = std::getenv("GSKNN_SLO_LATENCY_MS")) {
      const double ms = std::strtod(e, nullptr);
      if (ms > 0.0) s.latency_target_s = ms / 1000.0;
    }
    if (const char* e = std::getenv("GSKNN_SLO_LATENCY_TARGET")) {
      const double q = std::strtod(e, nullptr);
      if (q > 0.0 && q < 1.0) s.latency_quantile = q;
    }
    if (const char* e = std::getenv("GSKNN_SLO_AVAILABILITY")) {
      const double a = std::strtod(e, nullptr);
      if (a > 0.0 && a < 1.0) s.availability_target = a;
    }
    return s;
  }();
  return slo;
}

MetricsSnapshot snapshot() { return snapshot_at(now_ns()); }

MetricsSnapshot snapshot_at(std::uint64_t now) {
  MetricsSnapshot out;
  out.enabled = enabled();
  out.serve_health = serve_health();
  out.window_now_sec = now / 1000000000u;
  out.slo = slo_from_env();
  // Window slots align across shards (slot = second % kWindowBuckets), but
  // a shard that idled may still hold a previous lap's second in a slot.
  // Reduce to the newest epoch per slot and only add matching shards.
  for (const Shard& s : g_shards) {
    for (int i = 0; i < kWindowBuckets; ++i) {
      const std::uint64_t e = s.win_epoch[i].load(std::memory_order_relaxed);
      if (e > out.window_epoch[i]) out.window_epoch[i] = e;
    }
  }
  // Rotate on read: slots only get their epoch refreshed by record(), so
  // after >kWindowBuckets idle seconds every slot still carries a previous
  // lap's second. Expire those here — a scrape (or SLO burn-rate read) of an
  // idle process must report an empty window, not the last burst of traffic
  // as if it were current. One second of future skew is tolerated (a
  // recording thread racing the scrape's clock read); beyond that the stamp
  // is clock damage and the slot is dropped rather than trusted forever.
  for (int i = 0; i < kWindowBuckets; ++i) {
    const std::uint64_t e = out.window_epoch[i];
    if (e == 0) continue;
    const bool future_damaged = e > out.window_now_sec + 1;
    const bool expired =
        e <= out.window_now_sec &&
        out.window_now_sec - e >= static_cast<std::uint64_t>(kWindowBuckets);
    if (future_damaged || expired) out.window_epoch[i] = 0;
  }
  for (const Shard& s : g_shards) {
    for (int i = 0; i < kWindowBuckets; ++i) {
      if (out.window_epoch[i] == 0 ||
          s.win_epoch[i].load(std::memory_order_relaxed) !=
              out.window_epoch[i]) {
        continue;
      }
      for (int st = 0; st < kStatusCount; ++st) {
        out.window_status[i][st] +=
            s.win_status[i][st].load(std::memory_order_relaxed);
      }
      for (int b = 0; b < kHistBuckets; ++b) {
        out.window_latency[i][b] +=
            s.win_latency[i][b].load(std::memory_order_relaxed);
      }
      out.window_latency_sum_ns[i] +=
          s.win_latency_sum_ns[i].load(std::memory_order_relaxed);
      out.window_drift_count[i] +=
          s.win_drift_count[i].load(std::memory_order_relaxed);
      out.window_drift_sum_millilog2[i] +=
          s.win_drift_sum_millilog2[i].load(std::memory_order_relaxed);
    }
  }
  for (const Shard& s : g_shards) {
    for (int e = 0; e < kEntryPointCount; ++e) {
      for (int st = 0; st < kStatusCount; ++st) {
        out.calls[e][st] += s.calls[e][st].load(std::memory_order_relaxed);
      }
      for (int b = 0; b < kHistBuckets; ++b) {
        out.latency[e][b] += s.latency[e][b].load(std::memory_order_relaxed);
      }
      out.latency_sum_ns[e] +=
          s.latency_sum_ns[e].load(std::memory_order_relaxed);
    }
    for (int a = 0; a < 4; ++a) {
      for (int b = 0; b < kHistBuckets; ++b) {
        out.shape[a][b] += s.shape[a][b].load(std::memory_order_relaxed);
      }
      out.shape_sum[a] += s.shape_sum[a].load(std::memory_order_relaxed);
    }
    for (int p = 0; p < 2; ++p) {
      for (int b = 0; b < kHistBuckets; ++b) {
        out.drift[p][b] += s.drift[p][b].load(std::memory_order_relaxed);
      }
      out.drift_sum_millilog2[p] +=
          s.drift_sum_millilog2[p].load(std::memory_order_relaxed);
    }
    for (int c = 0; c < kCounterCount; ++c) {
      out.counters[c] += s.counters[c].load(std::memory_order_relaxed);
    }
  }
  return out;
}

void reset() {
  for (Shard& s : g_shards) {
    for (int e = 0; e < kEntryPointCount; ++e) {
      for (int st = 0; st < kStatusCount; ++st) {
        s.calls[e][st].store(0, std::memory_order_relaxed);
      }
      for (int b = 0; b < kHistBuckets; ++b) {
        s.latency[e][b].store(0, std::memory_order_relaxed);
      }
      s.latency_sum_ns[e].store(0, std::memory_order_relaxed);
    }
    for (int a = 0; a < 4; ++a) {
      for (int b = 0; b < kHistBuckets; ++b) {
        s.shape[a][b].store(0, std::memory_order_relaxed);
      }
      s.shape_sum[a].store(0, std::memory_order_relaxed);
    }
    for (int p = 0; p < 2; ++p) {
      for (int b = 0; b < kHistBuckets; ++b) {
        s.drift[p][b].store(0, std::memory_order_relaxed);
      }
      s.drift_sum_millilog2[p].store(0, std::memory_order_relaxed);
    }
    for (int c = 0; c < kCounterCount; ++c) {
      s.counters[c].store(0, std::memory_order_relaxed);
    }
    for (int i = 0; i < kWindowBuckets; ++i) {
      zero_window_slot(s, i);
      s.win_epoch[i].store(0, std::memory_order_relaxed);
    }
  }
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---- MetricsSnapshot -------------------------------------------------------

std::uint64_t MetricsSnapshot::calls_total(EntryPoint ep) const {
  const int e = static_cast<int>(ep);
  if (e < 0 || e >= kEntryPointCount) return 0;
  std::uint64_t total = 0;
  for (int st = 0; st < kStatusCount; ++st) total += calls[e][st];
  return total;
}

std::uint64_t MetricsSnapshot::status_total(int status) const {
  if (status < 0 || status >= kStatusCount) return 0;
  std::uint64_t total = 0;
  for (int e = 0; e < kEntryPointCount; ++e) total += calls[e][status];
  return total;
}

std::uint64_t MetricsSnapshot::drift_count(int precision) const {
  if (precision < 0 || precision > 1) return 0;
  return sum_buckets(drift[precision]);
}

std::uint64_t MetricsSnapshot::latency_quantile_ns(EntryPoint ep,
                                                   double q) const {
  const int e = static_cast<int>(ep);
  if (e < 0 || e >= kEntryPointCount) return 0;
  const std::uint64_t total = sum_buckets(latency[e]);
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(total - 1)) + 1;
  std::uint64_t cum = 0;
  for (int b = 0; b < kHistBuckets; ++b) {
    cum += latency[e][b];
    if (cum >= rank) return bucket_limit(b);
  }
  return bucket_limit(kHistBuckets - 1);
}

bool MetricsSnapshot::window_slot_live(int i) const {
  if (i < 0 || i >= kWindowBuckets) return false;
  const std::uint64_t e = window_epoch[i];
  if (e == 0) return false;
  // A slot one second ahead of the snapshot cut (clock skew between the
  // recording thread and the scrape) still counts as live; anything further
  // ahead is clock damage, not traffic. The unbounded `e >= window_now_sec`
  // form of this clause used to grant eternal liveness to any future-stamped
  // slot.
  if (e > window_now_sec) return e - window_now_sec <= 1;
  return window_now_sec - e < kWindowBuckets;
}

std::uint64_t MetricsSnapshot::window_calls() const {
  std::uint64_t total = 0;
  for (int i = 0; i < kWindowBuckets; ++i) {
    if (!window_slot_live(i)) continue;
    for (int st = 0; st < kStatusCount; ++st) total += window_status[i][st];
  }
  return total;
}

std::uint64_t MetricsSnapshot::window_errors() const {
  std::uint64_t total = 0;
  for (int i = 0; i < kWindowBuckets; ++i) {
    if (!window_slot_live(i)) continue;
    for (int st = 1; st < kStatusCount; ++st) total += window_status[i][st];
  }
  return total;
}

double MetricsSnapshot::window_error_rate() const {
  const std::uint64_t calls = window_calls();
  if (calls == 0) return 0.0;
  return static_cast<double>(window_errors()) / static_cast<double>(calls);
}

std::uint64_t MetricsSnapshot::window_latency_quantile_ns(double q) const {
  std::uint64_t merged[kHistBuckets] = {};
  std::uint64_t total = 0;
  for (int i = 0; i < kWindowBuckets; ++i) {
    if (!window_slot_live(i)) continue;
    for (int b = 0; b < kHistBuckets; ++b) {
      merged[b] += window_latency[i][b];
      total += window_latency[i][b];
    }
  }
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(total - 1)) + 1;
  std::uint64_t cum = 0;
  for (int b = 0; b < kHistBuckets; ++b) {
    cum += merged[b];
    if (cum >= rank) return bucket_limit(b);
  }
  return bucket_limit(kHistBuckets - 1);
}

double MetricsSnapshot::window_drift_mean_log2() const {
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  for (int i = 0; i < kWindowBuckets; ++i) {
    if (!window_slot_live(i)) continue;
    count += window_drift_count[i];
    sum += window_drift_sum_millilog2[i];
  }
  if (count == 0) return 0.0;
  return static_cast<double>(sum) / 1000.0 / static_cast<double>(count);
}

double MetricsSnapshot::window_latency_burn_rate() const {
  const std::uint64_t target_ns = static_cast<std::uint64_t>(
      slo.latency_target_s > 0.0 ? slo.latency_target_s * 1e9 : 0.0);
  std::uint64_t total = 0;
  std::uint64_t within = 0;
  for (int i = 0; i < kWindowBuckets; ++i) {
    if (!window_slot_live(i)) continue;
    for (int b = 0; b < kHistBuckets; ++b) {
      const std::uint64_t c = window_latency[i][b];
      total += c;
      // A bucket counts as within-target only when its whole range is:
      // the straddling bucket is charged to the budget (conservative).
      if (bucket_limit(b) <= target_ns) within += c;
    }
  }
  if (total == 0) return 0.0;
  const double budget = 1.0 - slo.latency_quantile;
  if (budget <= 0.0) return 0.0;
  const double miss =
      static_cast<double>(total - within) / static_cast<double>(total);
  return miss / budget;
}

double MetricsSnapshot::window_availability_burn_rate() const {
  const double budget = 1.0 - slo.availability_target;
  if (budget <= 0.0) return 0.0;
  return window_error_rate() / budget;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  if (other.window_now_sec > window_now_sec) {
    window_now_sec = other.window_now_sec;
  }
  for (int i = 0; i < kWindowBuckets; ++i) {
    if (other.window_epoch[i] == window_epoch[i]) {
      for (int st = 0; st < kStatusCount; ++st) {
        window_status[i][st] += other.window_status[i][st];
      }
      for (int b = 0; b < kHistBuckets; ++b) {
        window_latency[i][b] += other.window_latency[i][b];
      }
      window_latency_sum_ns[i] += other.window_latency_sum_ns[i];
      window_drift_count[i] += other.window_drift_count[i];
      window_drift_sum_millilog2[i] += other.window_drift_sum_millilog2[i];
    } else if (other.window_epoch[i] > window_epoch[i]) {
      window_epoch[i] = other.window_epoch[i];
      for (int st = 0; st < kStatusCount; ++st) {
        window_status[i][st] = other.window_status[i][st];
      }
      for (int b = 0; b < kHistBuckets; ++b) {
        window_latency[i][b] = other.window_latency[i][b];
      }
      window_latency_sum_ns[i] = other.window_latency_sum_ns[i];
      window_drift_count[i] = other.window_drift_count[i];
      window_drift_sum_millilog2[i] = other.window_drift_sum_millilog2[i];
    }  // else: ours is newer, keep it
  }
  for (int e = 0; e < kEntryPointCount; ++e) {
    for (int st = 0; st < kStatusCount; ++st) {
      calls[e][st] += other.calls[e][st];
    }
    for (int b = 0; b < kHistBuckets; ++b) {
      latency[e][b] += other.latency[e][b];
    }
    latency_sum_ns[e] += other.latency_sum_ns[e];
  }
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < kHistBuckets; ++b) shape[a][b] += other.shape[a][b];
    shape_sum[a] += other.shape_sum[a];
  }
  for (int p = 0; p < 2; ++p) {
    for (int b = 0; b < kHistBuckets; ++b) drift[p][b] += other.drift[p][b];
    drift_sum_millilog2[p] += other.drift_sum_millilog2[p];
  }
  for (int c = 0; c < kCounterCount; ++c) counters[c] += other.counters[c];
  // Health is a gauge, not a counter: the merged view is as sick as the
  // sickest contributor.
  if (other.serve_health > serve_health) serve_health = other.serve_health;
}

std::string MetricsSnapshot::to_json() const {
  std::string out;
  out.reserve(16384);
  append_fmt(out, "{\"metrics_version\":1,\"enabled\":%s",
             enabled ? "true" : "false");
  out += ",\"entry_points\":{";
  for (int e = 0; e < kEntryPointCount; ++e) {
    const EntryPoint ep = static_cast<EntryPoint>(e);
    append_fmt(out, "%s\"%s\":{\"calls\":{", e == 0 ? "" : ",",
               entry_point_name(ep));
    for (int st = 0; st < kStatusCount; ++st) {
      append_fmt(out, "%s\"%s\":%llu", st == 0 ? "" : ",", status_label(st),
                 static_cast<unsigned long long>(calls[e][st]));
    }
    append_fmt(out, "},\"latency_ns\":{\"count\":%llu,\"sum\":%llu,"
                    "\"buckets\":",
               static_cast<unsigned long long>(sum_buckets(latency[e])),
               static_cast<unsigned long long>(latency_sum_ns[e]));
    append_bucket_array(out, latency[e]);
    append_fmt(out, "},\"p50_ns\":%llu,\"p99_ns\":%llu}",
               static_cast<unsigned long long>(latency_quantile_ns(ep, 0.5)),
               static_cast<unsigned long long>(latency_quantile_ns(ep, 0.99)));
  }
  out += "},\"shape\":{";
  for (int a = 0; a < 4; ++a) {
    append_fmt(out, "%s\"%s\":{\"count\":%llu,\"sum\":%llu,\"buckets\":",
               a == 0 ? "" : ",", kShapeDims[a],
               static_cast<unsigned long long>(sum_buckets(shape[a])),
               static_cast<unsigned long long>(shape_sum[a]));
    append_bucket_array(out, shape[a]);
    out += '}';
  }
  append_fmt(out, "},\"model_drift\":{\"center_bucket\":%d,"
                  "\"buckets_per_log2\":%d",
             kDriftCenter, kDriftBucketsPerLog2);
  for (int p = 0; p < 2; ++p) {
    append_fmt(out, ",\"%s\":{\"count\":%llu,\"sum_millilog2\":%lld,"
                    "\"buckets\":",
               p == 0 ? "f64" : "f32",
               static_cast<unsigned long long>(sum_buckets(drift[p])),
               static_cast<long long>(drift_sum_millilog2[p]));
    append_bucket_array(out, drift[p]);
    out += '}';
  }
  append_fmt(out,
             "},\"window\":{\"buckets\":%d,\"bucket_seconds\":%d,"
             "\"now_sec\":%llu,\"calls\":%llu,\"errors\":%llu,"
             "\"error_rate\":%.9g,\"p50_ns\":%llu,\"p99_ns\":%llu,"
             "\"drift_mean_log2\":%.9g",
             kWindowBuckets, kWindowBucketSeconds,
             static_cast<unsigned long long>(window_now_sec),
             static_cast<unsigned long long>(window_calls()),
             static_cast<unsigned long long>(window_errors()),
             window_error_rate(),
             static_cast<unsigned long long>(window_latency_quantile_ns(0.5)),
             static_cast<unsigned long long>(
                 window_latency_quantile_ns(0.99)),
             window_drift_mean_log2());
  append_fmt(out,
             ",\"slo\":{\"latency_target_s\":%.9g,\"latency_quantile\":%.9g,"
             "\"availability_target\":%.9g,\"latency_burn_rate\":%.9g,"
             "\"availability_burn_rate\":%.9g}",
             slo.latency_target_s, slo.latency_quantile,
             slo.availability_target, window_latency_burn_rate(),
             window_availability_burn_rate());
  out += ",\"series\":[";
  {
    // Live slots, oldest second first (epoch order, not slot order).
    int order[kWindowBuckets];
    int live = 0;
    for (int i = 0; i < kWindowBuckets; ++i) {
      if (window_slot_live(i)) order[live++] = i;
    }
    for (int a = 1; a < live; ++a) {  // tiny insertion sort by epoch
      const int v = order[a];
      int b = a;
      while (b > 0 && window_epoch[order[b - 1]] > window_epoch[v]) {
        order[b] = order[b - 1];
        --b;
      }
      order[b] = v;
    }
    for (int j = 0; j < live; ++j) {
      const int i = order[j];
      std::uint64_t slot_calls = 0, slot_errors = 0;
      for (int st = 0; st < kStatusCount; ++st) {
        slot_calls += window_status[i][st];
        if (st != 0) slot_errors += window_status[i][st];
      }
      append_fmt(out,
                 "%s{\"epoch_sec\":%llu,\"calls\":%llu,\"errors\":%llu,"
                 "\"latency_sum_ns\":%llu,\"drift_count\":%llu}",
                 j == 0 ? "" : ",",
                 static_cast<unsigned long long>(window_epoch[i]),
                 static_cast<unsigned long long>(slot_calls),
                 static_cast<unsigned long long>(slot_errors),
                 static_cast<unsigned long long>(window_latency_sum_ns[i]),
                 static_cast<unsigned long long>(window_drift_count[i]));
    }
  }
  out += "]},\"counters\":{";
  for (int c = 0; c < kCounterCount; ++c) {
    append_fmt(out, "%s\"%s\":%llu", c == 0 ? "" : ",",
               counter_name(static_cast<Counter>(c)),
               static_cast<unsigned long long>(counters[c]));
  }
  append_fmt(out, "},\"serve_health\":%d}", serve_health);
  return out;
}

std::string MetricsSnapshot::to_prometheus() const {
  std::string out;
  out.reserve(65536);
  append_fmt(out,
             "# HELP gsknn_metrics_enabled Whether aggregate recording is "
             "armed.\n# TYPE gsknn_metrics_enabled gauge\n"
             "gsknn_metrics_enabled %d\n",
             enabled ? 1 : 0);

  out += "# HELP gsknn_calls_total Entry-point calls by result status.\n"
         "# TYPE gsknn_calls_total counter\n";
  for (int e = 0; e < kEntryPointCount; ++e) {
    for (int st = 0; st < kStatusCount; ++st) {
      append_fmt(out, "gsknn_calls_total{entry=\"%s\",status=\"%s\"} %llu\n",
                 entry_point_name(static_cast<EntryPoint>(e)),
                 status_label(st),
                 static_cast<unsigned long long>(calls[e][st]));
    }
  }

  out += "# HELP gsknn_latency_seconds Per-entry-point call latency.\n";
  for (int e = 0; e < kEntryPointCount; ++e) {
    prom_histogram(
        out, "gsknn_latency_seconds", "entry",
        entry_point_name(static_cast<EntryPoint>(e)), latency[e],
        static_cast<double>(latency_sum_ns[e]) * 1e-9,
        [](int i) {
          return le_number(static_cast<double>(bucket_limit(i)) * 1e-9);
        },
        e == 0);
  }

  out += "# HELP gsknn_shape Workload shape distributions (m/n/d/k).\n";
  for (int a = 0; a < 4; ++a) {
    prom_histogram(
        out, "gsknn_shape", "dim", kShapeDims[a], shape[a],
        static_cast<double>(shape_sum[a]),
        [](int i) { return le_number(static_cast<double>(bucket_limit(i))); },
        a == 0);
  }

  out += "# HELP gsknn_model_drift_log2 log2(measured/predicted) kernel "
         "runtime vs the §2.6 performance model.\n";
  for (int p = 0; p < 2; ++p) {
    prom_histogram(
        out, "gsknn_model_drift_log2", "precision", p == 0 ? "f64" : "f32",
        drift[p], static_cast<double>(drift_sum_millilog2[p]) / 1000.0,
        [](int i) {
          return le_number((static_cast<double>(i - kDriftCenter) + 0.5) /
                           kDriftBucketsPerLog2);
        },
        p == 0);
  }

  out += "# HELP gsknn_events_total Governance and observability-health "
         "events.\n# TYPE gsknn_events_total counter\n";
  for (int c = 0; c < kCounterCount; ++c) {
    append_fmt(out, "gsknn_events_total{event=\"%s\"} %llu\n",
               counter_name(static_cast<Counter>(c)),
               static_cast<unsigned long long>(counters[c]));
  }

  append_fmt(out,
             "# HELP gsknn_serve_health Serving-runtime health state "
             "(0 healthy, 1 degraded, 2 unhealthy).\n"
             "# TYPE gsknn_serve_health gauge\n"
             "gsknn_serve_health %d\n",
             serve_health);

  // Rolling-window health gauges (last kWindowBuckets seconds).
  append_fmt(out,
             "# HELP gsknn_window_calls Calls in the rolling window.\n"
             "# TYPE gsknn_window_calls gauge\n"
             "gsknn_window_calls %llu\n",
             static_cast<unsigned long long>(window_calls()));
  append_fmt(out,
             "# HELP gsknn_window_errors Non-OK calls in the rolling "
             "window.\n# TYPE gsknn_window_errors gauge\n"
             "gsknn_window_errors %llu\n",
             static_cast<unsigned long long>(window_errors()));
  append_fmt(out,
             "# HELP gsknn_window_error_rate Non-OK fraction of windowed "
             "calls.\n# TYPE gsknn_window_error_rate gauge\n"
             "gsknn_window_error_rate %.9g\n",
             window_error_rate());
  out += "# HELP gsknn_window_latency_seconds Windowed latency quantiles "
         "(all entry points).\n"
         "# TYPE gsknn_window_latency_seconds gauge\n";
  append_fmt(out, "gsknn_window_latency_seconds{quantile=\"0.5\"} %.9g\n",
             static_cast<double>(window_latency_quantile_ns(0.5)) * 1e-9);
  append_fmt(out, "gsknn_window_latency_seconds{quantile=\"0.99\"} %.9g\n",
             static_cast<double>(window_latency_quantile_ns(0.99)) * 1e-9);
  append_fmt(out,
             "# HELP gsknn_window_drift_log2 Mean windowed "
             "log2(measured/predicted) model drift.\n"
             "# TYPE gsknn_window_drift_log2 gauge\n"
             "gsknn_window_drift_log2 %.9g\n",
             window_drift_mean_log2());
  out += "# HELP gsknn_window_burn_rate SLO burn rates over the rolling "
         "window (1.0 = spending the whole error budget).\n"
         "# TYPE gsknn_window_burn_rate gauge\n";
  append_fmt(out, "gsknn_window_burn_rate{slo=\"latency\"} %.9g\n",
             window_latency_burn_rate());
  append_fmt(out, "gsknn_window_burn_rate{slo=\"availability\"} %.9g\n",
             window_availability_burn_rate());
  return out;
}

}  // namespace gsknn::metrics
