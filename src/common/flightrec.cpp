// Flight recorder (see include/gsknn/common/flightrec.hpp).
#include "gsknn/common/flightrec.hpp"

#include <algorithm>
#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include "gsknn/common/metrics.hpp"

namespace gsknn::flightrec {

namespace {

const char* const kKindNames[kKindCount] = {
    "call_begin", "call_end",    "retile",       "demotion",     "deadline",
    "cancel",     "pack_evict",  "pack_update",  "stale_reject", "fault",
    "serve_submit", "serve_fuse", "serve_shed",  "serve_watchdog",
    "serve_breaker",
};

// ---- event rings -----------------------------------------------------------

// An event is five relaxed atomic words. Word 1 packs the discriminants:
//   bits [0,8)   kind
//   bits [8,16)  entry + 1 (0 = none)
//   bits [16,32) status
// Words 3/4 pack the shape as (m << 32) | n and (d << 32) | k.
constexpr int kWordsPerEvent = 5;

struct alignas(64) Ring {
  std::atomic<std::uint64_t> head{0};  ///< events ever written to this ring
  std::atomic<std::uint64_t> words[kRingCapacity][kWordsPerEvent];
};

Ring g_rings[kMaxThreads];
std::atomic<int> g_next_slot{0};
std::atomic<std::uint64_t> g_no_slot_drops{0};

/// Slot of the calling thread; -1 once the pool is exhausted.
int my_slot() {
  thread_local int slot = [] {
    const int i = g_next_slot.fetch_add(1, std::memory_order_relaxed);
    return i < kMaxThreads ? i : -1;
  }();
  return slot;
}

bool initial_enabled() {
  const char* e = std::getenv("GSKNN_FLIGHTREC");
  return e == nullptr || e[0] != '0';
}

std::atomic<bool> g_enabled{initial_enabled()};

// ---- status-trigger state --------------------------------------------------

// Default trigger mask: every non-OK status bit (statuses are small ints;
// gsknn::Status has 11 values, bit 0 is kOk).
constexpr std::uint32_t kDefaultTriggerMask = 0xFFFFFFFEu;

std::uint32_t initial_trigger_mask() {
  const char* e = std::getenv("GSKNN_FLIGHTREC_TRIGGER");
  if (e == nullptr || *e == '\0') return kDefaultTriggerMask;
  return static_cast<std::uint32_t>(std::strtoul(e, nullptr, 0));
}

std::atomic<std::uint32_t> g_trigger_mask{initial_trigger_mask()};
std::atomic<bool> g_trigger_fired{false};
std::atomic<DumpHook> g_dump_hook{nullptr};

/// GSKNN_FLIGHTREC_DUMP, latched once (also read by the signal handler,
/// which must not call getenv).
const char* trigger_path() {
  static const char* path = std::getenv("GSKNN_FLIGHTREC_DUMP");
  return path;
}

void maybe_trigger(int status) {
  if (status <= 0 || status >= 32) return;
  const std::uint32_t mask = g_trigger_mask.load(std::memory_order_relaxed);
  if (((mask >> status) & 1u) == 0) return;
  const DumpHook hook = g_dump_hook.load(std::memory_order_relaxed);
  const char* path = trigger_path();
  if (hook == nullptr && path == nullptr) return;  // nowhere to dump
  bool expected = false;
  if (!g_trigger_fired.compare_exchange_strong(expected, true,
                                               std::memory_order_relaxed)) {
    return;  // one-shot until rearm_trigger()
  }
  char reason[64];
  std::snprintf(reason, sizeof(reason), "status_trigger:%s",
                metrics::status_label(status));
  if (hook != nullptr && hook(path, reason)) return;
  if (path != nullptr) dump_to_file(path, reason);
}

// ---- packing helpers -------------------------------------------------------

inline std::uint64_t pack_meta(Kind kind, int entry, int status) {
  const std::uint64_t e =
      static_cast<std::uint64_t>(entry < 0 ? 0 : (entry & 0x7F) + 1);
  return static_cast<std::uint64_t>(static_cast<int>(kind) & 0xFF) |
         (e << 8) | (static_cast<std::uint64_t>(status & 0xFFFF) << 16);
}

inline std::uint64_t pack_pair(std::uint32_t hi, std::uint32_t lo) {
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

Event decode(const std::uint64_t w[kWordsPerEvent], std::uint64_t seq,
             int slot) {
  Event ev;
  ev.t_ns = w[0];
  ev.seq = seq;
  ev.thread_slot = slot;
  const std::uint64_t meta = w[1];
  int kind = static_cast<int>(meta & 0xFF);
  if (kind < 0 || kind >= kKindCount) kind = 0;  // torn read: clamp
  ev.kind = static_cast<Kind>(kind);
  const int e = static_cast<int>((meta >> 8) & 0xFF);
  ev.entry = e == 0 ? -1 : e - 1;
  ev.status = static_cast<int>((meta >> 16) & 0xFFFF);
  ev.value = w[2];
  ev.m = static_cast<std::uint32_t>(w[3] >> 32);
  ev.n = static_cast<std::uint32_t>(w[3]);
  ev.d = static_cast<std::uint32_t>(w[4] >> 32);
  ev.k = static_cast<std::uint32_t>(w[4]);
  return ev;
}

// ---- async-signal-safe formatting ------------------------------------------

// The signal-path writer may not allocate, lock, or call stdio. These
// helpers format into caller-provided buffers with plain stores.

std::size_t fmt_u64(char* buf, std::uint64_t v) {
  char tmp[20];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (std::size_t i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

struct FdWriter {
  int fd;
  char buf[512];
  std::size_t len = 0;

  void flush() {
    std::size_t off = 0;
    while (off < len) {
      const ssize_t w = ::write(fd, buf + off, len - off);
      if (w <= 0) break;
      off += static_cast<std::size_t>(w);
    }
    len = 0;
  }
  void str(const char* s) {
    for (; *s != '\0'; ++s) {
      if (len == sizeof(buf)) flush();
      buf[len++] = *s;
    }
  }
  void u64(std::uint64_t v) {
    if (len + 20 > sizeof(buf)) flush();
    len += fmt_u64(buf + len, v);
  }
  void i64(std::int64_t v) {
    if (v < 0) {
      str("-");
      u64(static_cast<std::uint64_t>(-v));
    } else {
      u64(static_cast<std::uint64_t>(v));
    }
  }
};

void write_event(FdWriter& w, const Event& ev) {
  w.str("{\"t_ns\":");
  w.u64(ev.t_ns);
  w.str(",\"seq\":");
  w.u64(ev.seq);
  w.str(",\"thread\":");
  w.i64(ev.thread_slot);
  w.str(",\"kind\":\"");
  w.str(kind_name(ev.kind));
  w.str("\",\"entry\":");
  if (ev.entry < 0) {
    w.str("null");
  } else {
    w.str("\"");
    w.str(metrics::entry_point_name(
        static_cast<metrics::EntryPoint>(ev.entry)));
    w.str("\"");
  }
  w.str(",\"status\":\"");
  w.str(metrics::status_label(ev.status));
  w.str("\",\"value\":");
  w.u64(ev.value);
  w.str(",\"m\":");
  w.u64(ev.m);
  w.str(",\"n\":");
  w.u64(ev.n);
  w.str(",\"d\":");
  w.u64(ev.d);
  w.str(",\"k\":");
  w.u64(ev.k);
  w.str("}\n");
}

/// Drain one ring without allocating (signal path): calls `fn` for each
/// retained event, oldest first.
template <typename Fn>
void drain_ring(int slot, Fn&& fn) {
  const Ring& r = g_rings[slot];
  const std::uint64_t head = r.head.load(std::memory_order_acquire);
  const std::uint64_t avail =
      head < kRingCapacity ? head : static_cast<std::uint64_t>(kRingCapacity);
  for (std::uint64_t i = head - avail; i < head; ++i) {
    const std::size_t idx = static_cast<std::size_t>(i % kRingCapacity);
    std::uint64_t w[kWordsPerEvent];
    for (int j = 0; j < kWordsPerEvent; ++j) {
      w[j] = r.words[idx][j].load(std::memory_order_relaxed);
    }
    fn(decode(w, i, slot));
  }
}

// ---- crash handler ---------------------------------------------------------

volatile sig_atomic_t g_in_crash_dump = 0;

void crash_handler(int sig) {
  // Restore default disposition first so a fault *inside* the dump (or the
  // re-raise below) terminates instead of recursing.
  ::signal(sig, SIG_DFL);
  if (g_in_crash_dump == 0) {
    g_in_crash_dump = 1;
    int fd = 2;
    const char* path = trigger_path();
    if (path != nullptr) {
      const int f = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (f >= 0) fd = f;
    }
    char reason[32];
    std::size_t n = 0;
    const char* prefix = "fatal_signal:";
    while (prefix[n] != '\0') {
      reason[n] = prefix[n];
      ++n;
    }
    n += fmt_u64(reason + n, static_cast<std::uint64_t>(sig));
    reason[n] = '\0';
    dump_to_fd(fd, reason);
    if (fd != 2) ::close(fd);
  }
  ::raise(sig);
}

}  // namespace

const char* kind_name(Kind k) {
  const int i = static_cast<int>(k);
  return (i >= 0 && i < kKindCount) ? kKindNames[i] : "?";
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

void record(Kind kind, int entry, int status, std::uint64_t value, int m,
            int n, int d, int k) {
  if (!enabled()) return;
  const int slot = my_slot();
  if (slot < 0) {
    g_no_slot_drops.fetch_add(1, std::memory_order_relaxed);
    if (kind == Kind::kCallEnd) maybe_trigger(status);
    return;
  }
  Ring& r = g_rings[slot];
  const std::uint64_t head = r.head.load(std::memory_order_relaxed);
  const std::size_t idx = static_cast<std::size_t>(head % kRingCapacity);
  auto* w = r.words[idx];
  w[0].store(metrics::now_ns(), std::memory_order_relaxed);
  w[1].store(pack_meta(kind, entry, status), std::memory_order_relaxed);
  w[2].store(value, std::memory_order_relaxed);
  w[3].store(pack_pair(static_cast<std::uint32_t>(m < 0 ? 0 : m),
                       static_cast<std::uint32_t>(n < 0 ? 0 : n)),
             std::memory_order_relaxed);
  w[4].store(pack_pair(static_cast<std::uint32_t>(d < 0 ? 0 : d),
                       static_cast<std::uint32_t>(k < 0 ? 0 : k)),
             std::memory_order_relaxed);
  r.head.store(head + 1, std::memory_order_release);
  if (kind == Kind::kCallEnd) maybe_trigger(status);
}

std::vector<Event> drain() {
  std::vector<Event> out;
  out.reserve(256);
  const int slots =
      std::min(g_next_slot.load(std::memory_order_relaxed), kMaxThreads);
  for (int s = 0; s < slots; ++s) {
    drain_ring(s, [&out](const Event& ev) { out.push_back(ev); });
  }
  std::sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    if (a.t_ns != b.t_ns) return a.t_ns < b.t_ns;
    if (a.thread_slot != b.thread_slot) return a.thread_slot < b.thread_slot;
    return a.seq < b.seq;
  });
  return out;
}

std::uint64_t dropped() {
  std::uint64_t total = g_no_slot_drops.load(std::memory_order_relaxed);
  const int slots =
      std::min(g_next_slot.load(std::memory_order_relaxed), kMaxThreads);
  for (int s = 0; s < slots; ++s) {
    const std::uint64_t head =
        g_rings[s].head.load(std::memory_order_relaxed);
    if (head > kRingCapacity) total += head - kRingCapacity;
  }
  return total;
}

void clear() {
  const int slots =
      std::min(g_next_slot.load(std::memory_order_relaxed), kMaxThreads);
  for (int s = 0; s < slots; ++s) {
    g_rings[s].head.store(0, std::memory_order_relaxed);
  }
  g_no_slot_drops.store(0, std::memory_order_relaxed);
}

std::uint32_t trigger_mask() {
  return g_trigger_mask.load(std::memory_order_relaxed);
}

void set_trigger_mask(std::uint32_t mask) {
  g_trigger_mask.store(mask, std::memory_order_relaxed);
}

bool trigger_fired() {
  return g_trigger_fired.load(std::memory_order_relaxed);
}

void rearm_trigger() {
  g_trigger_fired.store(false, std::memory_order_relaxed);
}

void set_dump_hook(DumpHook hook) {
  g_dump_hook.store(hook, std::memory_order_relaxed);
}

std::string dump_json(const char* reason) {
  const std::vector<Event> events = drain();
  std::string out;
  out.reserve(128 + events.size() * 160);
  char head[192];
  std::snprintf(head, sizeof(head),
                "{\"flightrec_version\":1,\"reason\":\"%s\",\"dropped\":%llu,"
                "\"events\":%zu}\n",
                reason != nullptr ? reason : "on_demand",
                static_cast<unsigned long long>(dropped()), events.size());
  out += head;
  char line[320];
  for (const Event& ev : events) {
    char entry_buf[40];
    if (ev.entry < 0) {
      std::snprintf(entry_buf, sizeof(entry_buf), "null");
    } else {
      std::snprintf(entry_buf, sizeof(entry_buf), "\"%s\"",
                    metrics::entry_point_name(
                        static_cast<metrics::EntryPoint>(ev.entry)));
    }
    std::snprintf(
        line, sizeof(line),
        "{\"t_ns\":%llu,\"seq\":%llu,\"thread\":%d,\"kind\":\"%s\","
        "\"entry\":%s,\"status\":\"%s\",\"value\":%llu,"
        "\"m\":%u,\"n\":%u,\"d\":%u,\"k\":%u}\n",
        static_cast<unsigned long long>(ev.t_ns),
        static_cast<unsigned long long>(ev.seq), ev.thread_slot,
        kind_name(ev.kind), entry_buf, metrics::status_label(ev.status),
        static_cast<unsigned long long>(ev.value), ev.m, ev.n, ev.d, ev.k);
    out += line;
  }
  return out;
}

bool dump_to_file(const char* path, const char* reason) {
  if (path == nullptr) return false;
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  const std::string text = dump_json(reason);
  const std::size_t n = std::fwrite(text.data(), 1, text.size(), f);
  const bool ok = n == text.size() && std::fclose(f) == 0;
  if (!ok && n != text.size()) std::fclose(f);
  return ok;
}

void dump_to_fd(int fd, const char* reason) {
  FdWriter w{fd};
  // Header. dropped() and the per-ring drains below only use atomic loads.
  w.str("{\"flightrec_version\":1,\"reason\":\"");
  w.str(reason != nullptr ? reason : "on_demand");
  w.str("\",\"dropped\":");
  w.u64(dropped());
  w.str(",\"events\":-1}\n");  // count unknown up front on the signal path
  const int slots =
      std::min(g_next_slot.load(std::memory_order_relaxed), kMaxThreads);
  for (int s = 0; s < slots; ++s) {
    drain_ring(s, [&w](const Event& ev) { write_event(w, ev); });
  }
  w.flush();
}

void install_crash_handler() {
  static std::atomic<bool> installed{false};
  bool expected = false;
  if (!installed.compare_exchange_strong(expected, true)) return;
  trigger_path();  // latch the env var outside the signal path
  const int sigs[] = {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT};
  for (const int sig : sigs) {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = crash_handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    ::sigaction(sig, &sa, nullptr);
  }
}

}  // namespace gsknn::flightrec
