// KernelProfile aggregation, JSON serialization and the Table-5-style
// pretty printer (see include/gsknn/common/telemetry.hpp).
#include "gsknn/common/telemetry.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace gsknn::telemetry {

namespace {

const char* const kPhaseNames[kPhaseCount] = {
    "pack_q", "pack_r", "micro", "select", "merge", "collect", "sq2d",
};

const char* const kPhaseLabels[kPhaseCount] = {
    "pack-Qc", "pack-Rc", "micro-kernel", "selection",
    "merge",   "collect", "sq2d",
};

const char* const kCounterNames[kCounterCount] = {
    "candidates_evaluated", "heap_pushes",    "root_rejects",
    "tiles",                "bytes_packed_q", "bytes_packed_r",
};

void append_kv(std::string& out, const char* key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.9g", key, v);
  out += buf;
}

void append_kv(std::string& out, const char* key, std::uint64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%llu", key,
                static_cast<unsigned long long>(v));
  out += buf;
}

void append_kv(std::string& out, const char* key, int v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "\"%s\":%d", key, v);
  out += buf;
}

void append_kv(std::string& out, const char* key, const char* v) {
  out += '"';
  out += key;
  out += "\":\"";
  out += v;
  out += '"';
}

}  // namespace

const char* phase_name(Phase p) {
  const int i = static_cast<int>(p);
  return (i >= 0 && i < kPhaseCount) ? kPhaseNames[i] : "?";
}

const char* counter_name(Counter c) {
  const int i = static_cast<int>(c);
  return (i >= 0 && i < kCounterCount) ? kCounterNames[i] : "?";
}

const char* simd_level_name(int level) {
  switch (static_cast<SimdLevel>(level)) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "?";
}

double KernelProfile::phase_total() const {
  double s = 0.0;
  for (double t : phase_seconds) s += t;
  return s;
}

double KernelProfile::other_seconds() const {
  return std::max(0.0, wall_seconds - phase_total());
}

double KernelProfile::gflops() const {
  if (wall_seconds <= 0.0) return 0.0;
  return (2.0 * d + 3.0) * static_cast<double>(m) * static_cast<double>(n) /
         wall_seconds / 1e9;
}

double KernelProfile::selection_fraction() const {
  if (wall_seconds <= 0.0) return 0.0;
  return phase(Phase::kSelect) / wall_seconds;
}

double KernelProfile::pack_bandwidth_gbs() const {
  const double t = phase(Phase::kPackQ) + phase(Phase::kPackR);
  if (t <= 0.0) return 0.0;
  const double bytes = static_cast<double>(counter(Counter::kBytesPackedQ) +
                                           counter(Counter::kBytesPackedR));
  return bytes / t / 1e9;
}

std::uint64_t KernelProfile::pmu_total(PmuEvent e) const {
  std::uint64_t s = 0;
  for (int p = 0; p < kPhaseCount; ++p) {
    s += phase_pmu[p][static_cast<int>(e)];
  }
  return s;
}

namespace {
double safe_ratio(std::uint64_t num, std::uint64_t den, double scale = 1.0) {
  return den > 0 ? scale * static_cast<double>(num) / static_cast<double>(den)
                 : 0.0;
}
}  // namespace

double KernelProfile::phase_ipc(Phase p) const {
  return safe_ratio(pmu(p, PmuEvent::kInstructions), pmu(p, PmuEvent::kCycles));
}

double KernelProfile::ipc() const {
  return safe_ratio(pmu_total(PmuEvent::kInstructions),
                    pmu_total(PmuEvent::kCycles));
}

double KernelProfile::phase_mpki(Phase p, PmuEvent miss_event) const {
  return safe_ratio(pmu(p, miss_event), pmu(p, PmuEvent::kInstructions),
                    1000.0);
}

double KernelProfile::mpki(PmuEvent miss_event) const {
  return safe_ratio(pmu_total(miss_event), pmu_total(PmuEvent::kInstructions),
                    1000.0);
}

double KernelProfile::phase_bytes_per_cycle(Phase p) const {
  return safe_ratio(pmu(p, PmuEvent::kLlcMisses) * 64,
                    pmu(p, PmuEvent::kCycles));
}

void KernelProfile::merge(const KernelProfile& other) {
  if (invocations == 0) {
    // Adopt the first real invocation's metadata wholesale, then restore the
    // accumulated measurements below.
    const KernelProfile self = *this;
    *this = other;
    wall_seconds = self.wall_seconds;
    std::memcpy(phase_seconds, self.phase_seconds, sizeof(phase_seconds));
    std::memcpy(phase_thread_seconds, self.phase_thread_seconds,
                sizeof(phase_thread_seconds));
    std::memcpy(counters, self.counters, sizeof(counters));
    std::memcpy(phase_pmu, self.phase_pmu, sizeof(phase_pmu));
    invocations = self.invocations;
  }
  wall_seconds += other.wall_seconds;
  for (int i = 0; i < kPhaseCount; ++i) {
    phase_seconds[i] += other.phase_seconds[i];
    phase_thread_seconds[i] += other.phase_thread_seconds[i];
  }
  for (int i = 0; i < kCounterCount; ++i) counters[i] += other.counters[i];
  for (int p = 0; p < kPhaseCount; ++p) {
    for (int e = 0; e < kPmuEventCount; ++e) {
      phase_pmu[p][e] += other.phase_pmu[p][e];
    }
  }
  counters_enabled = counters_enabled || other.counters_enabled;
  pmu_enabled = pmu_enabled || other.pmu_enabled;
  invocations += other.invocations;
}

std::string KernelProfile::to_json() const {
  std::string j;
  j.reserve(2048);
  j += '{';
  append_kv(j, "algorithm", algorithm);
  j += ',';
  append_kv(j, "precision", precision);
  j += ',';
  append_kv(j, "m", m);
  j += ',';
  append_kv(j, "n", n);
  j += ',';
  append_kv(j, "d", d);
  j += ',';
  append_kv(j, "k", k);
  j += ',';
  append_kv(j, "threads", threads);
  j += ',';
  append_kv(j, "variant", variant);
  j += ',';
  append_kv(j, "simd", simd_level_name(simd_level));
  j += ",\"blocking\":{";
  append_kv(j, "mr", blocking.mr);
  j += ',';
  append_kv(j, "nr", blocking.nr);
  j += ',';
  append_kv(j, "dc", blocking.dc);
  j += ',';
  append_kv(j, "mc", blocking.mc);
  j += ',';
  append_kv(j, "nc", blocking.nc);
  j += "},\"workspace\":{";
  append_kv(j, "bytes", static_cast<std::uint64_t>(workspace_bytes));
  j += ',';
  append_kv(j, "cap", static_cast<std::uint64_t>(workspace_cap));
  j += ',';
  append_kv(j, "retiles", workspace_retiles);
  j += "},";
  append_kv(j, "invocations", invocations);
  j += ',';
  append_kv(j, "wall_seconds", wall_seconds);
  j += ",\"phases\":{";
  for (int i = 0; i < kPhaseCount; ++i) {
    if (i > 0) j += ',';
    append_kv(j, kPhaseNames[i], phase_seconds[i]);
  }
  j += "},";
  append_kv(j, "phase_total", phase_total());
  j += ',';
  append_kv(j, "other_seconds", other_seconds());
  j += ",\"phase_thread_seconds\":{";
  for (int i = 0; i < kPhaseCount; ++i) {
    if (i > 0) j += ',';
    append_kv(j, kPhaseNames[i], phase_thread_seconds[i]);
  }
  j += "},";
  j += "\"counters_enabled\":";
  j += counters_enabled ? "true" : "false";
  j += ",\"counters\":{";
  for (int i = 0; i < kCounterCount; ++i) {
    if (i > 0) j += ',';
    append_kv(j, kCounterNames[i], counters[i]);
  }
  j += "},\"pmu\":{\"enabled\":";
  j += pmu_enabled ? "true" : "false";
  j += ",\"phases\":{";
  for (int p = 0; p < kPhaseCount; ++p) {
    if (p > 0) j += ',';
    j += '"';
    j += kPhaseNames[p];
    j += "\":{";
    for (int e = 0; e < kPmuEventCount; ++e) {
      if (e > 0) j += ',';
      append_kv(j, pmu_event_name(static_cast<PmuEvent>(e)), phase_pmu[p][e]);
    }
    j += '}';
  }
  j += "}},\"derived\":{";
  append_kv(j, "gflops", gflops());
  j += ',';
  append_kv(j, "model_gflops", model_gflops);
  j += ',';
  append_kv(j, "peak_gflops", peak_gflops);
  j += ',';
  append_kv(j, "peak_gbs", peak_gbs);
  j += ',';
  append_kv(j, "selection_fraction", selection_fraction());
  j += ',';
  append_kv(j, "pack_gbs", pack_bandwidth_gbs());
  j += ',';
  append_kv(j, "ipc", ipc());
  j += ',';
  append_kv(j, "l1_mpki", mpki(PmuEvent::kL1dMisses));
  j += ',';
  append_kv(j, "llc_mpki", mpki(PmuEvent::kLlcMisses));
  j += "}}";
  return j;
}

std::string KernelProfile::format_table() const {
  char line[192];
  std::string out;
  out.reserve(1024);
  std::snprintf(line, sizeof(line),
                "profile: %s %s m=%d n=%d d=%d k=%d threads=%d variant=%d "
                "simd=%s blocking=(%d,%d,%d,%d,%d) invocations=%llu\n",
                algorithm, precision, m, n, d, k, threads, variant,
                simd_level_name(simd_level), blocking.mr, blocking.nr,
                blocking.dc, blocking.mc, blocking.nc,
                static_cast<unsigned long long>(invocations));
  out += line;
  if (pmu_enabled) {
    std::snprintf(line, sizeof(line),
                  "  %-14s %12s %8s %14s %6s %8s %8s %6s\n", "phase",
                  "seconds", "% wall", "thread-secs", "ipc", "l1-mpki",
                  "llc-mpki", "B/cyc");
  } else {
    std::snprintf(line, sizeof(line), "  %-14s %12s %8s %14s\n", "phase",
                  "seconds", "% wall", "thread-secs");
  }
  out += line;
  const double wall = wall_seconds > 0.0 ? wall_seconds : 1.0;
  for (int i = 0; i < kPhaseCount; ++i) {
    if (phase_seconds[i] == 0.0 && phase_thread_seconds[i] == 0.0) continue;
    const auto ph = static_cast<Phase>(i);
    if (pmu_enabled) {
      std::snprintf(line, sizeof(line),
                    "  %-14s %12.6f %7.1f%% %14.6f %6.2f %8.2f %8.2f %6.2f\n",
                    kPhaseLabels[i], phase_seconds[i],
                    100.0 * phase_seconds[i] / wall, phase_thread_seconds[i],
                    phase_ipc(ph), phase_mpki(ph, PmuEvent::kL1dMisses),
                    phase_mpki(ph, PmuEvent::kLlcMisses),
                    phase_bytes_per_cycle(ph));
    } else {
      std::snprintf(line, sizeof(line), "  %-14s %12.6f %7.1f%% %14.6f\n",
                    kPhaseLabels[i], phase_seconds[i],
                    100.0 * phase_seconds[i] / wall, phase_thread_seconds[i]);
    }
    out += line;
  }
  std::snprintf(line, sizeof(line), "  %-14s %12.6f %7.1f%%\n", "(other)",
                other_seconds(), 100.0 * other_seconds() / wall);
  out += line;
  std::snprintf(line, sizeof(line), "  %-14s %12.6f %7.1f%%\n", "total (wall)",
                wall_seconds, 100.0);
  out += line;
  std::snprintf(line, sizeof(line),
                "  gflops=%.2f model_gflops=%.2f selection=%.1f%%\n", gflops(),
                model_gflops, 100.0 * selection_fraction());
  out += line;
  if (counters_enabled) {
    std::snprintf(
        line, sizeof(line),
        "  candidates=%llu heap_pushes=%llu root_rejects=%llu tiles=%llu\n",
        static_cast<unsigned long long>(counter(Counter::kCandidates)),
        static_cast<unsigned long long>(counter(Counter::kHeapPushes)),
        static_cast<unsigned long long>(counter(Counter::kRootRejects)),
        static_cast<unsigned long long>(counter(Counter::kTiles)));
    out += line;
    std::snprintf(
        line, sizeof(line),
        "  packed_q=%llu B packed_r=%llu B pack_bw=%.2f GB/s\n",
        static_cast<unsigned long long>(counter(Counter::kBytesPackedQ)),
        static_cast<unsigned long long>(counter(Counter::kBytesPackedR)),
        pack_bandwidth_gbs());
    out += line;
  }
  return out;
}

Recorder::Recorder(KernelProfile* sink, int threads)
    : sink_(sink), threads_(threads < 1 ? 1 : threads) {
  if (sink_ != nullptr) {
    slots_ = new ThreadCounters[static_cast<std::size_t>(threads_)]();
  }
}

Recorder::~Recorder() { delete[] slots_; }

void Recorder::aggregate(double wall_seconds) {
  if (sink_ == nullptr) return;
  for (int p = 0; p < kPhaseCount; ++p) {
    double mx = 0.0, sum = 0.0;
    for (int t = 0; t < threads_; ++t) {
      mx = std::max(mx, slots_[t].phase[p]);
      sum += slots_[t].phase[p];
    }
    sink_->phase_seconds[p] += mx;
    sink_->phase_thread_seconds[p] += sum;
  }
  for (int c = 0; c < kCounterCount; ++c) {
    std::uint64_t sum = 0;
    for (int t = 0; t < threads_; ++t) sum += slots_[t].counter[c];
    sink_->counters[c] += sum;
  }
  // PMU counts are extensive quantities (work done), so per-phase totals
  // sum across threads; IPC and miss rates derived from the sums are the
  // whole-phase aggregates.
  for (int p = 0; p < kPhaseCount; ++p) {
    for (int e = 0; e < kPmuEventCount; ++e) {
      std::uint64_t sum = 0;
      for (int t = 0; t < threads_; ++t) sum += slots_[t].pmu[p][e];
      sink_->phase_pmu[p][e] += sum;
    }
  }
  sink_->wall_seconds += wall_seconds;
  sink_->invocations += 1;
}

}  // namespace gsknn::telemetry
