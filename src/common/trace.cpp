// TraceSink implementation (see include/gsknn/common/trace.hpp): per-thread
// span rings and the Chrome trace_event serializer.
#include "gsknn/common/trace.hpp"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "gsknn/common/metrics.hpp"

namespace gsknn::telemetry {

namespace {

/// Phase-specific names for the a/b span payload (shown in the Perfetto
/// argument pane). Order matches telemetry::Phase.
struct ArgNames {
  const char* a;
  const char* b;
};
const ArgNames kArgNames[kPhaseCount] = {
    {"ic", "pc"},  // pack_q
    {"jc", "pc"},  // pack_r
    {"ic", "jc"},  // micro
    {"ic", "jc"},  // select
    {"i0", "i1"},  // merge
    {"m", "n"},    // collect
    {"m", "n"},    // sq2d
};

std::size_t env_ring_kb() {
  const char* e = std::getenv("GSKNN_TRACE_RING_KB");
  if (e == nullptr || e[0] == '\0') return 1024;
  const long v = std::strtol(e, nullptr, 10);
  return v > 0 ? static_cast<std::size_t>(v) : 1024;
}

/// Per-sink track slot of the calling thread, cached thread-locally and
/// keyed on the sink's process-unique id (an address key would stale-hit
/// when a new sink reuses a destroyed sink's storage). A thread alternating
/// between sinks re-claims a slot on each switch; OpenMP pools are stable,
/// so in practice a thread claims once per sink.
struct SlotCache {
  std::uint64_t sink_id = 0;
  int slot = -1;
};

std::atomic<std::uint64_t> g_next_sink_id{1};

}  // namespace

/// Single-producer span ring: only the owning thread writes, and export
/// happens after the traced region, so head is a plain counter.
struct TraceSink::Ring {
  std::vector<TraceSpan> buf;
  std::uint64_t head = 0;

  explicit Ring(std::size_t capacity) : buf(capacity) {}

  void push(const TraceSpan& s) {
    if (head >= buf.size()) {
      // Drop-oldest overwrite: the aggregate counter makes ring pressure
      // visible without exporting (or even finishing) the trace.
      metrics::add_counter(metrics::Counter::kTraceSpansDropped);
    }
    buf[static_cast<std::size_t>(head % buf.size())] = s;
    ++head;
  }
  std::uint64_t retained() const {
    return head < buf.size() ? head : buf.size();
  }
  std::uint64_t dropped() const {
    return head > buf.size() ? head - buf.size() : 0;
  }
};

TraceSink::TraceSink(std::size_t ring_kb)
    : sink_id_(g_next_sink_id.fetch_add(1, std::memory_order_relaxed)),
      ring_kb_(ring_kb > 0 ? ring_kb : env_ring_kb()) {
  ring_capacity_ = ring_kb_ * 1024 / sizeof(TraceSpan);
  if (ring_capacity_ < 16) ring_capacity_ = 16;
  epoch_ticks_ = trace_now();
  epoch_wall_ = std::chrono::steady_clock::now();
}

TraceSink::~TraceSink() {
  const int n = next_slot_.load(std::memory_order_acquire);
  for (int i = 0; i < n && i < kMaxTracks; ++i) {
    delete rings_[i].load(std::memory_order_acquire);
  }
}

TraceSink::Ring* TraceSink::ring_for_this_thread() {
  thread_local SlotCache cache;
  if (cache.sink_id == sink_id_ && cache.slot >= 0) {
    return rings_[cache.slot].load(std::memory_order_relaxed);
  }
  const int slot = next_slot_.fetch_add(1, std::memory_order_acq_rel);
  if (slot >= kMaxTracks) {
    // Out of tracks: record nothing, account the loss.
    next_slot_.store(kMaxTracks, std::memory_order_release);
    return nullptr;
  }
  Ring* ring = new Ring(ring_capacity_);
  rings_[slot].store(ring, std::memory_order_release);
  cache.sink_id = sink_id_;
  cache.slot = slot;
  return ring;
}

void TraceSink::record(Phase phase, std::uint64_t t0, std::uint64_t t1,
                       int a, int b) {
  Ring* ring = ring_for_this_thread();
  if (ring == nullptr) {
    dropped_overflow_.fetch_add(1, std::memory_order_relaxed);
    metrics::add_counter(metrics::Counter::kTraceSpansDropped);
    return;
  }
  TraceSpan s;
  s.t0 = t0;
  s.t1 = t1;
  s.phase = static_cast<std::int32_t>(phase);
  s.a = a;
  s.b = b;
  ring->push(s);
}

std::uint64_t TraceSink::span_count() const {
  std::uint64_t n = 0;
  const int tracks = next_slot_.load(std::memory_order_acquire);
  for (int i = 0; i < tracks && i < kMaxTracks; ++i) {
    const Ring* r = rings_[i].load(std::memory_order_acquire);
    if (r != nullptr) n += r->retained();
  }
  return n;
}

std::uint64_t TraceSink::dropped_spans() const {
  std::uint64_t n = dropped_overflow_.load(std::memory_order_relaxed);
  const int tracks = next_slot_.load(std::memory_order_acquire);
  for (int i = 0; i < tracks && i < kMaxTracks; ++i) {
    const Ring* r = rings_[i].load(std::memory_order_acquire);
    if (r != nullptr) n += r->dropped();
  }
  return n;
}

void TraceSink::reset() {
  const int tracks = next_slot_.load(std::memory_order_acquire);
  for (int i = 0; i < tracks && i < kMaxTracks; ++i) {
    Ring* r = rings_[i].load(std::memory_order_acquire);
    if (r != nullptr) r->head = 0;
  }
  dropped_overflow_.store(0, std::memory_order_relaxed);
  epoch_ticks_ = trace_now();
  epoch_wall_ = std::chrono::steady_clock::now();
}

std::string TraceSink::to_json() const {
  // Tick → microsecond calibration: on x86 the span timestamps are raw TSC,
  // so measure the tick rate over the sink's own lifetime (construction →
  // export brackets every recorded span). The non-x86 fallback records
  // steady-clock ns, where the rate is 1e-3 ticks/µs by definition.
  double ticks_per_us;
#if defined(__x86_64__) || defined(__i386__)
  {
    const std::uint64_t ticks = trace_now() - epoch_ticks_;
    const double us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - epoch_wall_)
            .count();
    ticks_per_us = (us > 0.0 && ticks > 0) ? static_cast<double>(ticks) / us
                                           : 1e3;  // ~1 GHz guess
  }
#else
  ticks_per_us = 1e3;
#endif

  const auto ts_us = [&](std::uint64_t ticks) {
    return static_cast<double>(ticks - epoch_ticks_) / ticks_per_us;
  };

  std::string j;
  j.reserve(1 << 16);
  j += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[256];
  bool first = true;
  const int tracks = next_slot_.load(std::memory_order_acquire);
  const int used = tracks < kMaxTracks ? tracks : kMaxTracks;
  for (int t = 0; t < used; ++t) {
    // Name each track so Perfetto shows "omp-<slot>" instead of a bare tid.
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%d,\"args\":{\"name\":\"omp-%d\"}}",
                  first ? "" : ",", t, t);
    first = false;
    j += buf;
  }
  for (int t = 0; t < used; ++t) {
    const Ring* r = rings_[t].load(std::memory_order_acquire);
    if (r == nullptr) continue;
    const std::uint64_t retained = r->retained();
    const std::uint64_t start = r->head - retained;  // oldest surviving span
    for (std::uint64_t i = start; i < r->head; ++i) {
      const TraceSpan& s = r->buf[static_cast<std::size_t>(i % r->buf.size())];
      const double t0 = ts_us(s.t0);
      const double dur = ts_us(s.t1) - t0;
      const int ph = s.phase >= 0 && s.phase < kPhaseCount ? s.phase : 0;
      int len = std::snprintf(
          buf, sizeof(buf),
          "%s{\"name\":\"%s\",\"cat\":\"gsknn\",\"ph\":\"X\",\"ts\":%.3f,"
          "\"dur\":%.3f,\"pid\":1,\"tid\":%d",
          first ? "" : ",", phase_name(static_cast<Phase>(ph)), t0,
          dur >= 0.0 ? dur : 0.0, t);
      first = false;
      j.append(buf, static_cast<std::size_t>(len));
      if (s.a >= 0 || s.b >= 0) {
        j += ",\"args\":{";
        bool inner_first = true;
        if (s.a >= 0) {
          len = std::snprintf(buf, sizeof(buf), "\"%s\":%d", kArgNames[ph].a,
                              s.a);
          j.append(buf, static_cast<std::size_t>(len));
          inner_first = false;
        }
        if (s.b >= 0) {
          len = std::snprintf(buf, sizeof(buf), "%s\"%s\":%d",
                              inner_first ? "" : ",", kArgNames[ph].b, s.b);
          j.append(buf, static_cast<std::size_t>(len));
        }
        j += '}';
      }
      j += '}';
    }
  }
  std::snprintf(buf, sizeof(buf),
                "],\"otherData\":{\"ring_kb\":%zu,\"spans\":%llu,"
                "\"dropped_spans\":%llu,\"thread_tracks\":%d,"
                "\"clock\":\"%s\",\"ticks_per_us\":%.1f}}",
                ring_kb_, static_cast<unsigned long long>(span_count()),
                static_cast<unsigned long long>(dropped_spans()), used,
#if defined(__x86_64__) || defined(__i386__)
                "tsc",
#else
                "steady_ns",
#endif
                ticks_per_us);
  j += buf;
  return j;
}

bool TraceSink::write_json(const char* path) const {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  const std::string j = to_json();
  const bool ok = std::fwrite(j.data(), 1, j.size(), f) == j.size();
  std::fclose(f);
  return ok;
}

}  // namespace gsknn::telemetry
