// perf_event_open counter groups (see include/gsknn/common/pmu.hpp).
//
// Linux-only by nature; every other platform compiles the fallback branch
// where open always fails and the telemetry layer reports pmu_enabled =
// false. That branch is also what a Linux host without perf access runs
// (paranoid sysctl, seccomp, unvirtualized PMU), so it is exercised
// unconditionally by tests/common/test_pmu.cpp.
#include "gsknn/common/pmu.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "gsknn/common/metrics.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#define GSKNN_PMU_LINUX 1
#endif

namespace gsknn::telemetry {

namespace {

const char* const kEventNames[kPmuEventCount] = {
    "cycles", "instructions", "l1d_misses", "llc_misses", "stall_cycles",
};

/// GSKNN_PMU=0 disables the syscall entirely (A/B switch and a way to make
/// the fallback path deterministic for tests). Evaluated once.
bool pmu_env_enabled() {
  static const bool on = [] {
    const char* e = std::getenv("GSKNN_PMU");
    return e == nullptr || e[0] != '0';
  }();
  return on;
}

/// Remembers a failed group-leader open so later threads skip the syscall.
std::atomic<bool> g_open_failed{false};

/// Reads whose counts were multiplex-extrapolated (see pmu.hpp).
std::atomic<std::uint64_t> g_multiplexed_reads{0};

#if defined(GSKNN_PMU_LINUX)

struct EventSpec {
  std::uint32_t type;
  std::uint64_t config;
};

const EventSpec kEventSpecs[kPmuEventCount] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HW_CACHE,
     PERF_COUNT_HW_CACHE_L1D | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_STALLED_CYCLES_BACKEND},
};

int open_event(const EventSpec& spec, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = spec.type;
  attr.config = spec.config;
  attr.disabled = 0;  // count from open; attribution works on deltas
  attr.exclude_kernel = 1;  // user-space only: works at paranoid <= 2
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  // pid = 0, cpu = -1: this thread, wherever it runs.
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, group_fd, 0));
}

#endif  // GSKNN_PMU_LINUX

}  // namespace

const char* pmu_event_name(PmuEvent e) {
  const int i = static_cast<int>(e);
  return (i >= 0 && i < kPmuEventCount) ? kEventNames[i] : "?";
}

PmuGroup::PmuGroup() {
#if defined(GSKNN_PMU_LINUX)
  if (!pmu_env_enabled() || g_open_failed.load(std::memory_order_relaxed)) {
    return;
  }
  leader_fd_ = open_event(kEventSpecs[0], -1);
  if (leader_fd_ < 0) {
    g_open_failed.store(true, std::memory_order_relaxed);
    return;
  }
  fds_[0] = leader_fd_;
  n_open_ = 1;
  for (int i = 1; i < kPmuEventCount; ++i) {
    // Absent events (stalled-cycles on many hosts, cache events on some
    // virtualized PMUs) simply stay out of the group: their slot reports
    // zero and event_available() false, the rest keep counting.
    fds_[i] = open_event(kEventSpecs[i], leader_fd_);
    if (fds_[i] >= 0) ++n_open_;
  }
#endif
}

PmuGroup::~PmuGroup() {
#if defined(GSKNN_PMU_LINUX)
  for (int i = kPmuEventCount - 1; i >= 0; --i) {
    if (fds_[i] >= 0) close(fds_[i]);
  }
#endif
}

bool PmuGroup::read(PmuCounts& out) const {
  out = PmuCounts();
#if defined(GSKNN_PMU_LINUX)
  if (!ok()) return false;
  // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, value[nr].
  std::uint64_t buf[3 + kPmuEventCount];
  const long want =
      static_cast<long>(sizeof(std::uint64_t)) * (3 + n_open_);
  if (::read(leader_fd_, buf, static_cast<std::size_t>(want)) != want) {
    return false;
  }
  const std::uint64_t enabled = buf[1], running = buf[2];
  // Multiplex scaling: with more events than hardware counters the whole
  // group rotates on/off together; enabled/running extrapolates the counts.
  const double scale =
      (running > 0 && running < enabled)
          ? static_cast<double>(enabled) / static_cast<double>(running)
          : 1.0;
  if (scale != 1.0) {
    g_multiplexed_reads.fetch_add(1, std::memory_order_relaxed);
    metrics::add_counter(metrics::Counter::kPmuMultiplexedReads);
  }
  int slot = 0;
  for (int i = 0; i < kPmuEventCount; ++i) {
    if (fds_[i] < 0) continue;  // absent events keep their zero
    const double scaled = static_cast<double>(buf[3 + slot]) * scale;
    out.v[i] = static_cast<std::uint64_t>(scaled);
    ++slot;
  }
  return true;
#else
  return false;
#endif
}

PmuGroup& PmuGroup::this_thread() {
  thread_local PmuGroup group;
  return group;
}

bool pmu_available() {
  if (!pmu_env_enabled()) return false;
  return PmuGroup::this_thread().ok();
}

std::uint64_t pmu_multiplexed_reads() {
  return g_multiplexed_reads.load(std::memory_order_relaxed);
}

}  // namespace gsknn::telemetry
