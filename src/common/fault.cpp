// Fault-injection hook state (see gsknn/common/fault.hpp).
//
// All counters are relaxed atomics: the hooks are called concurrently from
// OpenMP regions, and the only guarantee the harness needs is that exactly
// one call observes each one-shot trigger (fetch_add provides that).
#include "gsknn/common/fault.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "gsknn/common/flightrec.hpp"

namespace gsknn::fault {

namespace {

struct State {
  std::atomic<bool> armed{false};
  std::atomic<std::int64_t> alloc_nth{0};
  std::atomic<std::int64_t> alloc_every{0};
  std::atomic<std::int64_t> cancel_at{0};
  std::atomic<std::int64_t> cancel_every{0};
  std::atomic<std::int64_t> slow_us{0};
  std::atomic<std::int64_t> serve_slow_us{0};
  std::atomic<std::uint64_t> allocs{0};
  std::atomic<std::uint64_t> polls{0};
};

State& state() {
  static State s;
  return s;
}

/// Parse "key=value,key=value" from GSKNN_FAULT. Unknown keys are ignored
/// (forward compatibility); malformed values read as 0 (off).
void parse_env(const char* e) {
  FaultConfig cfg;
  const char* p = e;
  while (*p != '\0') {
    const char* eq = std::strchr(p, '=');
    if (eq == nullptr) break;
    const char* end = std::strchr(eq, ',');
    const std::int64_t v = std::atoll(eq + 1);
    const std::size_t klen = static_cast<std::size_t>(eq - p);
    if (klen == 9 && std::strncmp(p, "alloc_nth", 9) == 0) cfg.alloc_nth = v;
    if (klen == 11 && std::strncmp(p, "alloc_every", 11) == 0) {
      cfg.alloc_every = v;
    }
    if (klen == 9 && std::strncmp(p, "cancel_at", 9) == 0) cfg.cancel_at = v;
    if (klen == 12 && std::strncmp(p, "cancel_every", 12) == 0) {
      cfg.cancel_every = v;
    }
    if (klen == 7 && std::strncmp(p, "slow_us", 7) == 0) cfg.slow_us = v;
    if (klen == 13 && std::strncmp(p, "serve_slow_us", 13) == 0) {
      cfg.serve_slow_us = v;
    }
    if (end == nullptr) break;
    p = end + 1;
  }
  configure(cfg);
}

/// One-time GSKNN_FAULT pickup. configure() also claims the flag so a
/// programmatic config is never clobbered by a later env parse. An atomic
/// claim, NOT std::call_once: parse_env ends in configure(), and re-entering
/// an active call_once on the same flag deadlocks.
std::atomic<bool> g_env_consumed{false};

void ensure_env_parsed() {
  bool expected = false;
  if (!g_env_consumed.compare_exchange_strong(expected, true,
                                              std::memory_order_acq_rel)) {
    return;
  }
  const char* e = std::getenv("GSKNN_FAULT");
  if (e != nullptr && e[0] != '\0') parse_env(e);
}

}  // namespace

void configure(const FaultConfig& cfg) {
  State& s = state();
  s.alloc_nth.store(cfg.alloc_nth, std::memory_order_relaxed);
  s.alloc_every.store(cfg.alloc_every, std::memory_order_relaxed);
  s.cancel_at.store(cfg.cancel_at, std::memory_order_relaxed);
  s.cancel_every.store(cfg.cancel_every, std::memory_order_relaxed);
  s.slow_us.store(cfg.slow_us, std::memory_order_relaxed);
  s.serve_slow_us.store(cfg.serve_slow_us, std::memory_order_relaxed);
  s.allocs.store(0, std::memory_order_relaxed);
  s.polls.store(0, std::memory_order_relaxed);
  const bool any = cfg.alloc_nth > 0 || cfg.alloc_every > 0 ||
                   cfg.cancel_at > 0 || cfg.cancel_every > 0 ||
                   cfg.slow_us > 0 || cfg.serve_slow_us > 0;
  s.armed.store(any, std::memory_order_release);
  // Mark the env as consumed even if nobody set it: a programmatic
  // configure() must win over a GSKNN_FAULT picked up later.
  g_env_consumed.store(true, std::memory_order_release);
}

void reset() { configure(FaultConfig{}); }

bool active() noexcept {
  State& s = state();
  if (s.armed.load(std::memory_order_acquire)) return true;
  ensure_env_parsed();
  return s.armed.load(std::memory_order_acquire);
}

bool inject_alloc_failure() noexcept {
  if (!active()) return false;
  State& s = state();
  // fetch_add makes the sequence number unique per call, so each one-shot
  // trigger fires in exactly one thread.
  const auto seq = static_cast<std::int64_t>(
      s.allocs.fetch_add(1, std::memory_order_relaxed) + 1);
  const std::int64_t nth = s.alloc_nth.load(std::memory_order_relaxed);
  const std::int64_t every = s.alloc_every.load(std::memory_order_relaxed);
  if ((nth > 0 && seq == nth) || (every > 0 && seq % every == 0)) {
    // value 1 = alloc site, matching the "fault" kind's payload contract.
    flightrec::record(flightrec::Kind::kFault, -1, 0, 1);
    return true;
  }
  return false;
}

bool inject_cancel() noexcept {
  if (!active()) return false;
  State& s = state();
  const std::int64_t slow = s.slow_us.load(std::memory_order_relaxed);
  if (slow > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(slow));
  }
  const auto seq = static_cast<std::int64_t>(
      s.polls.fetch_add(1, std::memory_order_relaxed) + 1);
  const std::int64_t at = s.cancel_at.load(std::memory_order_relaxed);
  const std::int64_t every = s.cancel_every.load(std::memory_order_relaxed);
  if ((at > 0 && seq == at) || (every > 0 && seq % every == 0)) {
    // value 2 = cancel-poll site.
    flightrec::record(flightrec::Kind::kFault, -1, 0, 2);
    return true;
  }
  return false;
}

bool inject_serve_delay() noexcept {
  if (!active()) return false;
  State& s = state();
  const std::int64_t slow = s.serve_slow_us.load(std::memory_order_relaxed);
  if (slow <= 0) return false;
  // value 3 = serving-worker delay site.
  flightrec::record(flightrec::Kind::kFault, -1, 0, 3);
  std::this_thread::sleep_for(std::chrono::microseconds(slow));
  return true;
}

std::uint64_t alloc_count() noexcept {
  return state().allocs.load(std::memory_order_relaxed);
}

std::uint64_t poll_count() noexcept {
  return state().polls.load(std::memory_order_relaxed);
}

}  // namespace gsknn::fault
