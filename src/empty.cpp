// Anchor TU for the gsknn_shared library; all content comes from the static archives.
